#include "membership/sync.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/workload.hpp"

namespace pmc {
namespace {

struct SyncCluster {
  std::vector<Member> members;
  std::unique_ptr<Interns> interns = std::make_unique<Interns>();
  std::unique_ptr<GroupTree> tree;
  std::unique_ptr<Runtime> runtime;
  std::vector<ProcessId> pid_by_id;  ///< dense AddrId -> pid directory
  std::vector<std::unique_ptr<SyncNode>> nodes;
  SyncConfig config;

  void register_pid(const Address& a, ProcessId pid) {
    const AddrId id = interns->addrs.intern(a);
    if (pid_by_id.size() <= id) pid_by_id.resize(id + 1, kNoProcess);
    pid_by_id[id] = pid;
  }

  SyncNode::Directory directory_fn() const {
    return [this](AddrId id) {
      return id < pid_by_id.size() ? pid_by_id[id] : kNoProcess;
    };
  }

  /// The depth-`depth` row of `node`'s view with infix `c`; npos if absent.
  static std::size_t row_of(const SyncNode& node, std::size_t depth,
                            AddrComponent c) {
    return node.view().view(depth).find_index(c);
  }
};

SyncCluster make_sync_cluster(std::size_t a, std::size_t d, std::size_t r,
                              std::uint64_t seed = 1) {
  SyncCluster c;
  Rng rng(seed);
  const auto space =
      AddressSpace::regular(static_cast<AddrComponent>(a), d);
  c.members = uniform_interest_members(space, 0.5, rng);
  c.config.tree.depth = d;
  c.config.tree.redundancy = r;
  c.config.gossip_period = sim_ms(50);
  c.config.gossip_fanout = 3;
  c.config.suspicion_timeout = sim_ms(600);
  c.tree = std::make_unique<GroupTree>(c.config.tree, c.members, *c.interns);
  c.runtime = std::make_unique<Runtime>(NetworkConfig{}, seed ^ 0x1234);
  for (std::size_t i = 0; i < c.members.size(); ++i)
    c.register_pid(c.members[i].address, static_cast<ProcessId>(i));
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    c.nodes.push_back(std::make_unique<SyncNode>(
        *c.runtime, static_cast<ProcessId>(i), c.config,
        c.tree->materialize_view(c.members[i].address),
        c.members[i].subscription));
    c.nodes.back()->set_directory(c.directory_fn());
  }
  return c;
}

TEST(SyncNode, FoundersStartJoined) {
  auto c = make_sync_cluster(3, 2, 2);
  for (const auto& n : c.nodes) EXPECT_TRUE(n->joined());
}

TEST(SyncNode, StableGroupViewsStayConsistent) {
  auto c = make_sync_cluster(3, 2, 2);
  c.runtime->run_for(sim_ms(500));
  // No churn: every node still knows all 3 subtrees and its 3 neighbors.
  for (const auto& n : c.nodes) {
    EXPECT_EQ(n->view().view(1).live_count(), 3u);
    EXPECT_EQ(n->view().view(2).live_count(), 3u);
  }
}

TEST(SyncNode, JoinerIsAdoptedByNeighbors) {
  auto c = make_sync_cluster(3, 2, 2);
  // 2.2 exists; make a cluster without it, then join it back.
  const Address newbie = Address::parse("2.2");
  const ProcessId newbie_pid = static_cast<ProcessId>(c.nodes.size());
  // Remove from the founding views by rebuilding a smaller cluster:
  SyncCluster small;
  small.config = c.config;
  Rng rng(3);
  const auto space = AddressSpace::regular(3, 2);
  for (const auto& m : uniform_interest_members(space, 0.5, rng)) {
    if (m.address == newbie) continue;
    small.members.push_back(m);
  }
  small.tree = std::make_unique<GroupTree>(small.config.tree, small.members,
                                           *small.interns);
  small.runtime = std::make_unique<Runtime>(NetworkConfig{}, 77);
  for (std::size_t i = 0; i < small.members.size(); ++i)
    small.register_pid(small.members[i].address,
                       static_cast<ProcessId>(i));
  small.register_pid(newbie, newbie_pid);
  for (std::size_t i = 0; i < small.members.size(); ++i) {
    small.nodes.push_back(std::make_unique<SyncNode>(
        *small.runtime, static_cast<ProcessId>(i), small.config,
        small.tree->materialize_view(small.members[i].address),
        small.members[i].subscription));
    small.nodes.back()->set_directory(small.directory_fn());
  }

  // Join via a *distant* contact (0.0) so the request must be routed.
  SyncNode joiner(*small.runtime, newbie_pid, small.config, newbie,
                  Subscription::parse("u < 0.3"), /*contact=*/0,
                  *small.interns);
  joiner.set_directory(small.directory_fn());

  small.runtime->run_for(sim_ms(1500));

  EXPECT_TRUE(joiner.joined());
  // The joiner knows its neighborhood...
  EXPECT_GE(joiner.view().view(2).live_count(), 2u);
  EXPECT_GE(joiner.view().view(1).live_count(), 3u);
  // ...and its immediate neighbors know the joiner.
  std::size_t aware = 0;
  for (const auto& n : small.nodes) {
    if (n->address().component(0) != 2) continue;
    const auto& leaf = n->view().view(2);
    const std::size_t i = SyncCluster::row_of(*n, 2, 2);
    if (i != DepthView::npos && leaf.alive(i)) ++aware;
  }
  EXPECT_GE(aware, 2u);
}

TEST(SyncNode, LeaveTombstonesPropagate) {
  auto c = make_sync_cluster(3, 2, 2, /*seed=*/5);
  c.runtime->run_for(sim_ms(200));
  const Address leaver = c.nodes[4]->address();  // 1.1
  c.nodes[4]->leave();
  c.runtime->run_for(sim_ms(1500));
  std::size_t tombstoned = 0;
  for (const auto& n : c.nodes) {
    if (!n->alive()) continue;
    if (n->address().component(0) != leaver.component(0)) continue;
    const auto& leaf = n->view().view(2);
    const std::size_t i = SyncCluster::row_of(*n, 2, leaver.component(1));
    if (i != DepthView::npos && !leaf.alive(i)) ++tombstoned;
  }
  EXPECT_GE(tombstoned, 2u);  // both surviving neighbors of 1.x
}

TEST(SyncNode, CrashedNeighborSuspectedAfterTimeout) {
  auto c = make_sync_cluster(3, 2, 2, /*seed=*/9);
  c.runtime->run_for(sim_ms(200));
  const Address victim = c.nodes[1]->address();  // 0.1
  c.nodes[1]->crash();
  c.runtime->run_for(sim_ms(3000));
  std::size_t suspected = 0;
  for (const auto& n : c.nodes) {
    if (!n->alive()) continue;
    if (n->address().component(0) != victim.component(0)) continue;
    const auto& leaf = n->view().view(2);
    const std::size_t i = SyncCluster::row_of(*n, 2, victim.component(1));
    if (i != DepthView::npos && !leaf.alive(i)) ++suspected;
  }
  EXPECT_GE(suspected, 2u);
}

TEST(SyncNode, DelegateRecompactionRefreshesCounts) {
  // After a member of subgroup 0 crashes and is suspected, the delegates of
  // subgroup 0 republish their depth-1 row with a reduced process count,
  // and anti-entropy carries it to other subtrees.
  auto c = make_sync_cluster(3, 2, 2, /*seed=*/13);
  c.runtime->run_for(sim_ms(200));
  c.nodes[2]->crash();  // 0.2 — not a delegate (R=2 keeps 0.0 and 0.1)
  c.runtime->run_for(sim_ms(4000));
  std::size_t updated = 0;
  for (const auto& n : c.nodes) {
    if (!n->alive()) continue;
    if (n->address().component(0) == 0) continue;  // other subtrees only
    const auto& root = n->view().view(1);
    const std::size_t i = SyncCluster::row_of(*n, 1, 0);
    if (i != DepthView::npos && root.alive(i) && root.process_count(i) == 2)
      ++updated;
  }
  EXPECT_GE(updated, 3u);
}

TEST(SyncNode, MessagesCarryNoUpdatesWhenConverged) {
  auto c = make_sync_cluster(3, 2, 2, /*seed=*/21);
  c.runtime->run_for(sim_ms(400));
  const auto before = c.runtime->network().counters().sent;
  c.runtime->run_for(sim_ms(400));
  const auto after = c.runtime->network().counters().sent;
  // Converged steady state: only digests flow, roughly fanout per node per
  // period; replies should be rare. Allow 2x headroom.
  const double periods = 400.0 / 50.0;
  const double per_period = static_cast<double>(after - before) / periods;
  EXPECT_LE(per_period, static_cast<double>(c.nodes.size()) * 3 * 2);
}

// ---------------------------------------------------------------------------
// Join retry backoff (SyncConfig::join_backoff)
// ---------------------------------------------------------------------------

/// Times (sim µs) at which a lone joiner (re)sends its JoinRequest when
/// the contact never answers (pid 0 is registered nowhere, so every send
/// lands on dead_target). Sends are observed through the network's sent
/// counter, sampled on a 5 ms grid — fine enough to see the 50 ms period
/// ticks exactly.
std::vector<SimTime> join_send_times(bool backoff, SimTime horizon) {
  Interns interns;
  SyncConfig config;
  config.tree.depth = 2;
  config.tree.redundancy = 2;
  config.gossip_period = sim_ms(50);
  config.max_join_retries = 0;  // unbounded: observe the raw schedule
  config.join_backoff = backoff;
  Runtime rt(NetworkConfig{}, /*seed=*/901);
  SyncNode joiner(rt, /*pid=*/1, config, Address::parse("0.0"),
                  Subscription::parse("u < 0.5"), /*contact=*/0, interns);
  std::vector<SimTime> times;
  std::uint64_t seen = 0;
  for (SimTime t = 0; t <= horizon; t += sim_ms(5)) {
    rt.run_until(t);
    const auto sent = rt.network().counters().sent;
    if (sent > seen) {
      times.push_back(t);
      seen = sent;
    }
  }
  return times;
}

TEST(SyncNode, LegacyJoinRetryCadenceIsEveryPeriod) {
  const auto times = join_send_times(false, sim_ms(500));
  ASSERT_GE(times.size(), 5u);
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_EQ(times[i] - times[i - 1], sim_ms(50)) << i;
}

TEST(SyncNode, JoinBackoffScheduleIsPinned) {
  // The backed-off schedule is a deterministic function of (base seed,
  // pid, period): doubling waits capped at 8 periods, plus jitter from the
  // joiner's labeled stream, quantized up to the next period tick. Pinned
  // so a refactor that silently moves the jitter draws (or re-seeds the
  // stream) shows up here rather than in a flaky soak.
  const auto times = join_send_times(true, sim_ms(4000));
  const std::vector<SimTime> pinned = {0,       100000,  250000,  550000,
                                       1000000, 1550000, 2050000, 2600000,
                                       3100000, 3600000};
  EXPECT_EQ(times, pinned);

  // Structure, independent of the jitter values: the k-th wait is at
  // least period * min(2^k, 8) and at most 1.5x that plus one period of
  // tick quantization — and the whole schedule replays bit for bit.
  ASSERT_GE(times.size(), 4u);
  for (std::size_t k = 1; k < times.size(); ++k) {
    const SimTime gap = times[k] - times[k - 1];
    const SimTime base =
        sim_ms(50) * static_cast<SimTime>(
                         std::min<std::uint64_t>(std::uint64_t{1} << (k - 1),
                                                 8));
    EXPECT_GE(gap, base) << k;
    EXPECT_LE(gap, base + base / 2 + sim_ms(50)) << k;
  }
  EXPECT_EQ(join_send_times(true, sim_ms(4000)), times);
}

}  // namespace
}  // namespace pmc

#include "addr/intern.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "addr/space.hpp"
#include "common/rng.hpp"

namespace pmc {
namespace {

TEST(AddrIntern, RoundTripAndIdempotence) {
  AddrInternTable table;
  const Address a = Address::parse("1.2.3");
  const Address b = Address::parse("1.2.4");

  const AddrId ia = table.intern(a);
  const AddrId ib = table.intern(b);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(table.intern(a), ia);  // idempotent
  EXPECT_EQ(table.intern(b), ib);
  EXPECT_EQ(table.size(), 2u);

  EXPECT_EQ(table.resolve(ia), a);
  EXPECT_EQ(table.resolve(ib), b);
  EXPECT_EQ(table.find(a), ia);
  EXPECT_EQ(table.find(Address::parse("9.9.9")), kNoAddr);

  EXPECT_EQ(table.depth(ia), 3u);
  for (std::size_t i = 0; i < a.depth(); ++i)
    EXPECT_EQ(table.component(ia, i), a.component(i));
  const auto span = table.components(ib);
  ASSERT_EQ(span.size(), b.depth());
  for (std::size_t i = 0; i < b.depth(); ++i)
    EXPECT_EQ(span[i], b.component(i));
}

TEST(AddrIntern, SharedPrefixKeysMatchComponentComparison) {
  AddrInternTable table;
  const AddrId x = table.intern(Address::parse("2.7.1"));
  const AddrId y = table.intern(Address::parse("2.7.5"));
  const AddrId z = table.intern(Address::parse("3.7.1"));

  // Length-0 prefixes (the root) are shared by everything.
  EXPECT_EQ(table.prefix_key(x, 0), table.prefix_key(y, 0));
  // x and y share "2.7"; z shares nothing past the root with either.
  EXPECT_EQ(table.prefix_key(x, 1), table.prefix_key(y, 1));
  EXPECT_EQ(table.prefix_key(x, 2), table.prefix_key(y, 2));
  EXPECT_NE(table.prefix_key(x, 3), table.prefix_key(y, 3));
  EXPECT_NE(table.prefix_key(x, 1), table.prefix_key(z, 1));

  EXPECT_EQ(table.common_prefix_length(x, y), 2u);
  EXPECT_EQ(table.common_prefix_length(x, z), 0u);
  EXPECT_EQ(table.common_prefix_length(x, x), 3u);
}

TEST(AddrIntern, RandomizedEquivalenceWithAddressMath) {
  // The interned prefix/distance/order math must agree with the
  // component-vector implementation on every pair — the SoA refactor rides
  // on this equivalence.
  AddrInternTable table;
  const auto space = AddressSpace::regular(5, 3);
  const auto all = space.enumerate();

  Rng rng(0xdecaf);
  std::vector<Address> picked;
  std::vector<AddrId> ids;
  for (std::size_t k = 0; k < 60; ++k) {
    const auto& a = all[rng.next_below(all.size())];
    picked.push_back(a);
    ids.push_back(table.intern(a));
  }

  for (std::size_t i = 0; i < picked.size(); ++i) {
    for (std::size_t j = 0; j < picked.size(); ++j) {
      EXPECT_EQ(table.common_prefix_length(ids[i], ids[j]),
                picked[i].common_prefix_length(picked[j]));
      EXPECT_EQ(table.distance(ids[i], ids[j]),
                picked[i].distance(picked[j]));
      EXPECT_EQ(table.less(ids[i], ids[j]), picked[i] < picked[j]);
      EXPECT_EQ(ids[i] == ids[j], picked[i] == picked[j]);
    }
  }
}

TEST(AddrIntern, SortingByLessMatchesAddressOrderDespiteInternOrder) {
  // Ids are assigned in first-intern order, so ranking by raw id would be
  // wrong; less() must recover lexicographic address order.
  AddrInternTable table;
  std::vector<Address> addrs;
  for (const char* t : {"3.1", "1.2", "2.9", "1.1", "2.0"})
    addrs.push_back(Address::parse(t));
  std::vector<AddrId> ids;
  for (const auto& a : addrs) ids.push_back(table.intern(a));

  std::sort(ids.begin(), ids.end(),
            [&](AddrId a, AddrId b) { return table.less(a, b); });
  std::sort(addrs.begin(), addrs.end());
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(table.resolve(ids[i]), addrs[i]);
}

TEST(AddrIntern, ReserveDoesNotDisturbIds) {
  AddrInternTable table;
  table.reserve(64, 3);
  const AddrId a = table.intern(Address::parse("0.0.0"));
  const AddrId b = table.intern(Address::parse("0.0.1"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(table.find(Address::parse("0.0.0")), a);
}

}  // namespace
}  // namespace pmc

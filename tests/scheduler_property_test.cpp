// Differential property test: the calendar queue and the reference indexed
// heap must execute identical (time, seq) sequences under randomized mixes
// of schedule / cancel / reschedule / run_until — the repo's byte-identical
// determinism hinges on the scheduler's total order being exactly (at, seq).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"

namespace pmc {
namespace {

struct Execution {
  SimTime at;
  std::uint64_t id;  // scheduling ordinal (the FIFO tie-break witness)

  friend bool operator==(const Execution&, const Execution&) = default;
};

/// Drives `sched` through a deterministic op mix and records the
/// (time, ordinal) execution sequence. Both implementations see the exact
/// same ops because the mix is derived from `seed`, never from scheduler
/// state.
template <class SchedulerT>
std::vector<Execution> drive(SchedulerT& sched, std::uint64_t seed,
                             std::size_t ops, bool interleave_run_until) {
  Rng rng(seed);
  std::vector<Execution> executed;
  executed.reserve(ops);
  std::vector<EventToken> tokens;
  std::uint64_t next_id = 0;

  const auto schedule_one = [&](SimTime at) {
    const std::uint64_t id = next_id++;
    tokens.push_back(sched.schedule_at(at, [&executed, &sched, at, id] {
      executed.push_back(Execution{at, id});
      EXPECT_EQ(sched.now(), at);
    }));
  };

  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.next_below(100);
    if (pick >= 80 && pick < 90 && !tokens.empty()) {
      // Cancel/reschedule *from inside an executing callback* — the
      // production shape (protocol timers are disarmed and re-armed from
      // delivery handlers), and the path that mutates the calendar
      // queue's partially-consumed cursor bucket mid-walk. The victim and
      // follow-up delay are drawn now, at schedule time, so both
      // implementations see identical decisions regardless of state.
      const std::size_t victim = rng.next_below(tokens.size());
      const SimTime at =
          sched.now() + static_cast<SimTime>(rng.next_below(sim_ms(1)));
      const SimTime follow =
          static_cast<SimTime>(rng.next_below(sim_ms(2)));
      const std::uint64_t id = next_id++;
      tokens.push_back(sched.schedule_at(
          at, [&executed, &sched, &tokens, &next_id, victim, follow, id] {
            executed.push_back(Execution{sched.now(), id});
            sched.cancel(tokens[victim]);  // possibly stale: must no-op
            const std::uint64_t follow_id = next_id++;
            tokens.push_back(sched.schedule_after(
                follow, [&executed, &sched, follow_id] {
                  executed.push_back(Execution{sched.now(), follow_id});
                }));
          }));
      continue;
    }
    if (pick < 55 || tokens.empty()) {
      // Mixed horizon: cohort-heavy near times (few distinct values, like
      // period-aligned timers), a uniform near band (message latencies),
      // and a far tail that lands in the overflow heap.
      const std::uint64_t shape = rng.next_below(3);
      SimTime at = sched.now();
      if (shape == 0) {
        at += static_cast<SimTime>(rng.next_below(8)) * sim_ms(50);
      } else if (shape == 1) {
        at += static_cast<SimTime>(rng.next_below(sim_ms(2)));
      } else {
        at += static_cast<SimTime>(rng.next_below(sim_sec(2)));
      }
      schedule_one(at);
    } else if (pick < 80) {
      // Cancel a uniformly chosen token (live, already-run, or already
      // cancelled — stale ones must be no-ops in both implementations).
      sched.cancel(tokens[rng.next_below(tokens.size())]);
    } else if (pick < 95) {
      // Reschedule: cancel + schedule anew (the periodic-timer churn).
      sched.cancel(tokens[rng.next_below(tokens.size())]);
      schedule_one(sched.now() +
                   static_cast<SimTime>(rng.next_below(sim_ms(100))));
    } else if (interleave_run_until) {
      // Advance partway: run_until must stop at the deadline and leave the
      // rest of the queue in exactly the reference state.
      sched.run_until(sched.now() +
                      static_cast<SimTime>(rng.next_below(sim_ms(120))));
    }
  }
  sched.run();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.pending(), 0u);
  return executed;
}

void expect_identical(CalendarScheduler calendar, std::uint64_t seed,
                      std::size_t ops, bool interleave_run_until) {
  ReferenceScheduler reference_sched;
  const auto reference =
      drive(reference_sched, seed, ops, interleave_run_until);
  const auto calendar_run = drive(calendar, seed, ops, interleave_run_until);
  ASSERT_EQ(reference.size(), calendar_run.size()) << "seed " << seed;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i], calendar_run[i])
        << "divergence at event " << i << " of " << reference.size()
        << " (seed " << seed << "): reference ran id " << reference[i].id
        << " at " << reference[i].at << ", calendar ran id "
        << calendar_run[i].id << " at " << calendar_run[i].at;
  }
}

TEST(SchedulerProperty, SmallMixesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    expect_identical(CalendarScheduler{}, seed, 300,
                     /*interleave_run_until=*/false);
}

TEST(SchedulerProperty, SmallMixesWithRunUntilMatchReference) {
  for (std::uint64_t seed = 100; seed <= 140; ++seed)
    expect_identical(CalendarScheduler{}, seed, 300,
                     /*interleave_run_until=*/true);
}

TEST(SchedulerProperty, LargeMixMatchesReference) {
  // The headline property: 10^5 mixed schedule/cancel/reschedule ops.
  expect_identical(CalendarScheduler{}, /*seed=*/2027, /*ops=*/100'000,
                   /*interleave_run_until=*/false);
}

TEST(SchedulerProperty, LargeMixWithRunUntilMatchesReference) {
  expect_identical(CalendarScheduler{}, /*seed=*/4099, /*ops=*/100'000,
                   /*interleave_run_until=*/true);
}

TEST(SchedulerProperty, TinyWheelStressesRotationAndOverflow) {
  // A 64-bucket, 1-us wheel forces constant window rotation and overflow
  // drains even for near-future events; the order must still match.
  for (std::uint64_t seed = 900; seed <= 915; ++seed)
    expect_identical(
        CalendarScheduler{/*bucket_width_log2=*/0, /*bucket_count_log2=*/6},
        seed, 500, /*interleave_run_until=*/true);
}

TEST(SchedulerProperty, EventsSchedulingEventsMatchReference) {
  // Callbacks that schedule more work mid-run (the simulator's actual
  // shape: deliveries schedule sends which schedule deliveries), including
  // same-time follow-ups, which must run later the same instant in seq
  // order.
  const auto drive_recursive = [](auto& sched) {
    // Everything lives on this frame and outlives sched.run(), so the
    // scheduled callbacks capture by reference.
    Rng rng(7);
    std::vector<std::pair<SimTime, int>> order;
    int next_id = 0;
    std::function<void(int)> spawn = [&](int depth) {
      const int id = next_id++;
      const SimTime jitter =
          depth == 0 ? 0
                     : static_cast<SimTime>(rng.next_below(3)) * sim_us(64);
      sched.schedule_after(
          jitter, [&sched, &order, &rng, &spawn, id, depth] {
            order.emplace_back(sched.now(), id);
            if (depth < 6) {
              const auto fanout = 1 + rng.next_below(2);
              for (std::uint64_t i = 0; i < fanout; ++i) spawn(depth + 1);
            }
          });
    };
    spawn(0);
    sched.run();
    return order;
  };
  ReferenceScheduler ref;
  CalendarScheduler cal;
  const auto a = drive_recursive(ref);
  const auto b = drive_recursive(cal);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pmc

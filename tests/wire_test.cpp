#include "wire/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "harness/workload.hpp"

namespace pmc {
namespace {

template <typename T, typename EncodeFn, typename DecodeFn>
T round_trip(const T& value, EncodeFn&& enc, DecodeFn&& dec) {
  Writer w;
  enc(w, value);
  Reader r(w.data());
  T out = dec(r);
  r.expect_end();
  return out;
}

TEST(Codec, VarintRoundTrip) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
        0xffffffffULL, ~0ULL}) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Codec, VarintCompactness) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, SignedVarintRoundTrip) {
  const std::int64_t cases[] = {
      0, 1, -1, 63, -64, 1000000, -1000000,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    Writer w;
    w.svarint(v);
    Reader r(w.data());
    EXPECT_EQ(r.svarint(), v);
  }
}

TEST(Codec, DoubleRoundTripExact) {
  for (const double v : {0.0, -0.0, 1.5, -3.25e300, 1e-308,
                         std::numeric_limits<double>::infinity()}) {
    Writer w;
    w.f64(v);
    Reader r(w.data());
    const double out = r.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Codec, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string("\0binary\xff", 8));
  Reader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str().size(), 8u);
}

TEST(Codec, TruncatedInputThrows) {
  Writer w;
  w.f64(1.0);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    Reader r(std::span(w.data().data(), cut));
    EXPECT_THROW(r.f64(), DecodeError);
  }
}

TEST(Codec, OverlongVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);
  Reader r(bad);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Codec, BadBooleanThrows) {
  const std::uint8_t bad[] = {7};
  Reader r(bad);
  EXPECT_THROW(r.boolean(), DecodeError);
}

TEST(Codec, StringLengthBeyondInputThrows) {
  Writer w;
  w.varint(100);
  w.u8('x');
  Reader r(w.data());
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(WireValue, AllKindsRoundTrip) {
  const Value values[] = {Value(42), Value(-7), Value(2.5), Value("Bob")};
  for (const Value& v : values) {
    const auto out = round_trip(v, [](Writer& w, const Value& x) {
      wire::encode(w, x);
    }, [](Reader& r) { return wire::decode_value(r); });
    EXPECT_EQ(out, v);
  }
}

TEST(WireEvent, RoundTripPreservesIdAndAttributes) {
  Event e(EventId{3, 99});
  e.with("b", 2).with("c", 41.5).with("e", "Bob").with("z", -5);
  const auto out = round_trip(e, [](Writer& w, const Event& x) {
    wire::encode(w, x);
  }, [](Reader& r) { return wire::decode_event(r); });
  EXPECT_EQ(out.id(), e.id());
  EXPECT_EQ(out.size(), e.size());
  EXPECT_EQ(out.get("b"), e.get("b"));
  EXPECT_EQ(out.get("e"), e.get("e"));
}

TEST(WirePredicate, SemanticRoundTrip) {
  const char* texts[] = {
      "true",
      "false",
      "b == 2",
      "b > 1 && 20.0 < c && c < 30.0 && z <= 50000",
      "e == \"Bob\" || e == \"Tom\"",
      "!(b == 2 && e == \"x\")",
      "(a == 1 || a == 2) && (b == 3 || b == 4)",
  };
  Rng rng(5);
  for (const auto* text : texts) {
    const auto original = Subscription::parse(text);
    const auto decoded = round_trip(
        original,
        [](Writer& w, const Subscription& s) { wire::encode(w, s); },
        [](Reader& r) { return wire::decode_subscription(r); });
    for (int trial = 0; trial < 200; ++trial) {
      Event e;
      e.with("a", static_cast<std::int64_t>(rng.next_below(5)))
          .with("b", static_cast<std::int64_t>(rng.next_below(6)))
          .with("c", rng.next_double() * 60.0)
          .with("z", static_cast<std::int64_t>(rng.next_below(100000)))
          .with("e", rng.bernoulli(0.5) ? "Bob" : "Tom");
      EXPECT_EQ(decoded.match(e), original.match(e)) << text;
    }
  }
}

TEST(WirePredicate, DepthBombRejected) {
  // 100 nested Not tags exceed the recursion limit.
  Writer w;
  for (int i = 0; i < 100; ++i) w.u8(5);
  w.u8(0);
  Reader r(w.data());
  EXPECT_THROW(wire::decode_predicate(r), DecodeError);
}

TEST(WireInterval, RoundTripPreservesBounds) {
  const auto iv = Interval::half_open(0.25, 0.75);
  const auto out = round_trip(iv, [](Writer& w, const Interval& x) {
    wire::encode(w, x);
  }, [](Reader& r) { return wire::decode_interval(r); });
  EXPECT_EQ(out, iv);
}

TEST(WireIntervalSet, RoundTripCanonical) {
  IntervalSet set;
  set.insert(Interval::closed(0.0, 1.0));
  set.insert(Interval::half_open(5.0, 7.0));
  const auto out = round_trip(set, [](Writer& w, const IntervalSet& x) {
    wire::encode(w, x);
  }, [](Reader& r) { return wire::decode_interval_set(r); });
  EXPECT_EQ(out, set);
}

TEST(WireSummary, ExactRoundTrip) {
  InterestSummary s = InterestSummary::from(
      Subscription::parse("b > 3 && 10.0 < c && c < 220.0"));
  s.merge(InterestSummary::from(Subscription::parse("u >= 0.1 && u < 0.4")));
  s.merge(InterestSummary::from(Subscription::parse("e == \"Bob\"")));
  s.merge(InterestSummary::from(Subscription::parse("e != \"x\"")));  // opaque
  const auto out = round_trip(s, [](Writer& w, const InterestSummary& x) {
    wire::encode(w, x);
  }, [](Reader& r) { return wire::decode_summary(r); });
  // Structural equality except opaque predicates (pointer identity differs),
  // so compare semantics over a grid.
  Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    Event e;
    e.with("b", static_cast<std::int64_t>(rng.next_below(8)))
        .with("c", rng.next_double() * 250.0)
        .with("u", rng.next_double())
        .with("e", rng.bernoulli(0.3) ? "Bob" : "x");
    EXPECT_EQ(out.match(e), s.match(e));
  }
  EXPECT_EQ(out.is_wildcard(), s.is_wildcard());
  EXPECT_EQ(out.numeric_unions(), s.numeric_unions());
  EXPECT_EQ(out.string_unions(), s.string_unions());
}

TEST(WireAddress, RoundTrip) {
  const auto a = Address::parse("128.178.73.3");
  const auto out = round_trip(a, [](Writer& w, const Address& x) {
    wire::encode(w, x);
  }, [](Reader& r) { return wire::decode_address(r); });
  EXPECT_EQ(out, a);
}

TEST(WireViewRow, RoundTrip) {
  ViewRow row;
  row.infix = 73;
  row.delegates = {Address::parse("128.178.73.3"),
                   Address::parse("128.178.73.17")};
  row.interests = InterestSummary::from(Subscription::parse("b > 0"));
  row.process_count = 21;
  row.version = 99;
  row.alive = false;
  const auto out = round_trip(row, [](Writer& w, const ViewRow& x) {
    wire::encode(w, x);
  }, [](Reader& r) { return wire::decode_view_row(r); });
  EXPECT_EQ(out.infix, row.infix);
  EXPECT_EQ(out.delegates, row.delegates);
  EXPECT_EQ(out.process_count, row.process_count);
  EXPECT_EQ(out.version, row.version);
  EXPECT_EQ(out.alive, row.alive);
  EXPECT_EQ(out.interests.numeric_unions(), row.interests.numeric_unions());
}

TEST(WireMessage, GossipEnvelope) {
  GossipMsg msg;
  msg.event = std::make_shared<const Event>(make_event_at(1, 2, 0.5));
  msg.rate = 0.25;
  msg.round = 3;
  msg.depth = 2;
  const auto bytes = wire::encode_message(msg);
  const auto decoded = wire::decode_message(bytes);
  const auto* out = dynamic_cast<const GossipMsg*>(decoded.get());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->event->id(), msg.event->id());
  EXPECT_DOUBLE_EQ(out->rate, 0.25);
  EXPECT_EQ(out->round, 3u);
  EXPECT_EQ(out->depth, 2u);
}

TEST(WireMessage, MembershipDigestEnvelope) {
  MembershipDigestMsg msg;
  msg.sender = Address::parse("1.2.3");
  msg.sender_pid = 7;
  msg.digests = {{1, 0, 10}, {2, 5, 20}, {3, 9, 30}};
  const auto bytes = wire::encode_message(msg);
  const auto decoded = wire::decode_message(bytes);
  const auto* out = dynamic_cast<const MembershipDigestMsg*>(decoded.get());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->sender, msg.sender);
  ASSERT_EQ(out->digests.size(), 3u);
  EXPECT_EQ(out->digests[1].infix, 5);
  EXPECT_EQ(out->digests[2].version, 30u);
}

TEST(WireMessage, AllEnvelopesRoundTrip) {
  std::vector<std::shared_ptr<MessageBase>> messages;
  {
    auto m = std::make_shared<MembershipUpdateMsg>();
    m->sender = Address::parse("0.1");
    ViewRow row;
    row.infix = 1;
    row.delegates = {Address::parse("0.1")};
    row.interests = InterestSummary::from(Subscription());
    row.process_count = 1;
    row.version = 5;
    m->rows.push_back(DepthRow{2, row});
    messages.push_back(std::move(m));
  }
  {
    auto m = std::make_shared<JoinRequestMsg>();
    m->joiner = Address::parse("3.3");
    m->joiner_pid = 15;
    m->subscription = Subscription::parse("u < 0.5");
    m->hops = 2;
    messages.push_back(std::move(m));
  }
  {
    auto m = std::make_shared<ViewTransferMsg>();
    m->sender = Address::parse("3.0");
    messages.push_back(std::move(m));
  }
  {
    auto m = std::make_shared<LeaveMsg>();
    m->leaver = Address::parse("2.1");
    messages.push_back(std::move(m));
  }
  {
    auto m = std::make_shared<FloodGossipMsg>();
    m->event = std::make_shared<const Event>(make_event_at(0, 1, 0.3));
    m->round = 4;
    messages.push_back(std::move(m));
  }
  {
    auto m = std::make_shared<GenuineGossipMsg>();
    m->event = std::make_shared<const Event>(make_event_at(0, 2, 0.6));
    m->round = 1;
    messages.push_back(std::move(m));
  }
  for (const auto& msg : messages) {
    const auto bytes = wire::encode_message(*msg);
    EXPECT_NO_THROW({
      const auto decoded = wire::decode_message(bytes);
      EXPECT_NE(decoded, nullptr);
    });
  }
}

TEST(WireMessage, UnknownTypeRejectedAtEncode) {
  struct Alien final : MessageBase {};
  EXPECT_THROW(wire::encode_message(Alien{}), std::logic_error);
}

TEST(WireMessage, TrailingBytesRejected) {
  LeaveMsg msg;
  msg.leaver = Address::parse("1.1");
  auto bytes = wire::encode_message(msg);
  bytes.push_back(0x00);
  EXPECT_THROW(wire::decode_message(bytes), DecodeError);
}

TEST(WireMessage, FuzzRandomBytesNeverCrash) {
  // Decoders must reject garbage with DecodeError, never UB/crash.
  Rng rng(0xf0220ULL);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    try {
      (void)wire::decode_message(junk);
    } catch (const DecodeError&) {
      // expected for almost every input
    }
  }
  SUCCEED();
}

TEST(WireMessage, FuzzTruncationsOfValidMessage) {
  MembershipUpdateMsg msg;
  msg.sender = Address::parse("1.2.3");
  ViewRow row;
  row.infix = 2;
  row.delegates = {Address::parse("1.2.3")};
  row.interests = InterestSummary::from(Subscription::parse("b > 0"));
  row.process_count = 3;
  row.version = 8;
  msg.rows.push_back(DepthRow{1, row});
  const auto bytes = wire::encode_message(msg);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    try {
      (void)wire::decode_message(std::span(bytes.data(), cut));
      // Some prefixes may decode to a shorter valid message only if the
      // format were self-delimiting per field — with expect_end they can't.
      FAIL() << "truncation at " << cut << " decoded successfully";
    } catch (const DecodeError&) {
    }
  }
}

}  // namespace
}  // namespace pmc

#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/table.hpp"

namespace pmc {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c;
  c.a = 4;
  c.d = 2;
  c.r = 2;
  c.fanout = 3;
  c.pd = 0.5;
  c.loss = 0.0;
  c.runs = 5;
  c.seed = 11;
  return c;
}

TEST(ExperimentConfig, GroupSizeIsAPowD) {
  EXPECT_EQ(tiny_config().group_size(), 16u);
  ExperimentConfig big;
  big.a = 22;
  big.d = 3;
  EXPECT_EQ(big.group_size(), 10648u);
}

TEST(ExperimentConfig, AnalysisParamsMirrorConfig) {
  const auto c = tiny_config();
  const auto p = c.analysis_params();
  EXPECT_EQ(p.a, c.a);
  EXPECT_EQ(p.d, c.d);
  EXPECT_EQ(p.r, c.r);
  EXPECT_DOUBLE_EQ(p.pd, c.pd);
  EXPECT_DOUBLE_EQ(p.env.loss, c.loss);
}

TEST(ExperimentConfig, PmcastConfigMirrorsConfig) {
  const auto c = tiny_config();
  const auto pc = c.pmcast_config();
  EXPECT_EQ(pc.tree.depth, c.d);
  EXPECT_EQ(pc.tree.redundancy, c.r);
  EXPECT_EQ(pc.fanout, c.fanout);
}

TEST(Experiment, PmcastMetricsInRange) {
  const auto result = run_pmcast_experiment(tiny_config());
  EXPECT_EQ(result.delivery.count(), 5u);
  EXPECT_GE(result.delivery.min(), 0.0);
  EXPECT_LE(result.delivery.max(), 1.0);
  EXPECT_GE(result.false_reception.min(), 0.0);
  EXPECT_LE(result.false_reception.max(), 1.0);
  EXPECT_GT(result.messages_per_process.mean(), 0.0);
}

TEST(Experiment, PmcastHighPdDeliversWell) {
  auto c = tiny_config();
  c.pd = 1.0;
  c.runs = 3;
  const auto result = run_pmcast_experiment(c);
  EXPECT_GT(result.delivery.mean(), 0.9);
}

TEST(Experiment, InterestedFractionTracksPd) {
  auto c = tiny_config();
  c.a = 8;  // 64 processes for a tighter estimate
  c.pd = 0.4;
  c.runs = 30;
  const auto result = run_pmcast_experiment(c);
  EXPECT_NEAR(result.interested_fraction.mean(), 0.4, 0.12);
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto r1 = run_pmcast_experiment(tiny_config());
  const auto r2 = run_pmcast_experiment(tiny_config());
  EXPECT_DOUBLE_EQ(r1.delivery.mean(), r2.delivery.mean());
  EXPECT_DOUBLE_EQ(r1.messages_per_process.mean(),
                   r2.messages_per_process.mean());
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto c2 = tiny_config();
  c2.seed = 999;
  const auto r1 = run_pmcast_experiment(tiny_config());
  const auto r2 = run_pmcast_experiment(c2);
  // Message counts are fine-grained enough to almost surely differ.
  EXPECT_NE(r1.messages_per_process.mean(), r2.messages_per_process.mean());
}

TEST(Experiment, FloodingHasNearTotalReception) {
  auto c = tiny_config();
  c.pd = 0.3;
  const auto result = run_flooding_experiment(c);
  EXPECT_GT(result.false_reception.mean(), 0.8);
  EXPECT_GT(result.delivery.mean(), 0.9);
}

TEST(Experiment, GenuineHasZeroFalseReception) {
  auto c = tiny_config();
  c.pd = 0.3;
  const auto result = run_genuine_experiment(c, /*view_size=*/8);
  EXPECT_DOUBLE_EQ(result.false_reception.mean(), 0.0);
}

TEST(Experiment, PmcastFalseReceptionBetweenBaselines) {
  auto c = tiny_config();
  c.a = 5;
  c.pd = 0.3;
  c.runs = 10;
  const auto pm = run_pmcast_experiment(c);
  const auto fl = run_flooding_experiment(c);
  const auto ge = run_genuine_experiment(c, 10);
  EXPECT_LE(pm.false_reception.mean(), fl.false_reception.mean());
  EXPECT_GE(pm.false_reception.mean(), ge.false_reception.mean());
}

TEST(Experiment, CrashFractionLowersDeliveryAtMost) {
  auto safe = tiny_config();
  safe.runs = 10;
  auto crashy = safe;
  crashy.crash_fraction = 0.3;
  const auto r_safe = run_pmcast_experiment(safe);
  const auto r_crashy = run_pmcast_experiment(crashy);
  // Crashes cannot *help*; allow noise.
  EXPECT_GE(r_safe.delivery.mean() + 0.15, r_crashy.delivery.mean());
}

TEST(EnvSizeT, ParsesAndFallsBack) {
  ::unsetenv("PMC_TEST_ENVVAR");
  EXPECT_EQ(env_size_t("PMC_TEST_ENVVAR", 7), 7u);
  ::setenv("PMC_TEST_ENVVAR", "42", 1);
  EXPECT_EQ(env_size_t("PMC_TEST_ENVVAR", 7), 42u);
  ::setenv("PMC_TEST_ENVVAR", "-3", 1);
  EXPECT_EQ(env_size_t("PMC_TEST_ENVVAR", 7), 7u);
  ::setenv("PMC_TEST_ENVVAR", "abc", 1);
  EXPECT_EQ(env_size_t("PMC_TEST_ENVVAR", 7), 7u);
  ::unsetenv("PMC_TEST_ENVVAR");
}

TEST(TablePrinter, AlignsColumns) {
  Table t({"x", "value"});
  t.add_row({"1", Table::num(0.5, 2)});
  t.add_row({"22", Table::num(1.25, 2)});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("0.50"), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinter, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(ExperimentConfigValidation, AcceptsDefaultsAndTinyConfig) {
  EXPECT_NO_THROW(ExperimentConfig{}.validate());
  EXPECT_NO_THROW(tiny_config().validate());
}

TEST(ExperimentConfigValidation, RejectsOutOfRangeEnvironment) {
  {
    auto c = tiny_config();
    c.loss = 1.0;  // ε = 1 would lose every message
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = tiny_config();
    c.loss = -0.1;
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = tiny_config();
    c.crash_fraction = 1.0;  // τ = 1 would crash everyone
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = tiny_config();
    c.pd = 1.2;
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = tiny_config();
    c.a = 70000;  // exceeds AddrComponent — would silently truncate
    EXPECT_THROW(c.validate(), std::logic_error);
  }
}

TEST(ExperimentConfigValidation, RejectsZeroSizes) {
  for (auto mutate : {+[](ExperimentConfig& c) { c.a = 0; },
                      +[](ExperimentConfig& c) { c.d = 0; },
                      +[](ExperimentConfig& c) { c.r = 0; },
                      +[](ExperimentConfig& c) { c.fanout = 0; },
                      +[](ExperimentConfig& c) { c.runs = 0; },
                      +[](ExperimentConfig& c) { c.period = 0; }}) {
    auto c = tiny_config();
    mutate(c);
    EXPECT_THROW(c.validate(), std::logic_error);
  }
}

TEST(ExperimentConfigValidation, RunnersRejectInvalidConfigs) {
  auto c = tiny_config();
  c.crash_fraction = 1.5;
  EXPECT_THROW(run_pmcast_experiment(c), std::logic_error);
  EXPECT_THROW(run_flooding_experiment(c), std::logic_error);
  EXPECT_THROW(run_genuine_experiment(c, 8), std::logic_error);
  EXPECT_THROW(run_treecast_experiment(c), std::logic_error);
  StreamConfig sc;
  sc.base = c;
  EXPECT_THROW(run_stream_experiment(sc), std::logic_error);
  sc.base = tiny_config();
  sc.events = 0;
  EXPECT_THROW(run_stream_experiment(sc), std::logic_error);
}

}  // namespace
}  // namespace pmc

#include "addr/address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace pmc {
namespace {

Address addr(std::initializer_list<AddrComponent> comps) {
  return Address(std::vector<AddrComponent>(comps));
}

TEST(Address, ParseDotted) {
  const auto a = Address::parse("128.178.73.3");
  ASSERT_EQ(a.depth(), 4u);
  EXPECT_EQ(a.component(0), 128);
  EXPECT_EQ(a.component(3), 3);
  EXPECT_EQ(a.to_string(), "128.178.73.3");
}

TEST(Address, ParseSingleComponent) {
  const auto a = Address::parse("7");
  EXPECT_EQ(a.depth(), 1u);
  EXPECT_EQ(a.component(0), 7);
}

TEST(Address, ParseErrors) {
  EXPECT_THROW(Address::parse(""), std::invalid_argument);
  EXPECT_THROW(Address::parse("1..2"), std::invalid_argument);
  EXPECT_THROW(Address::parse("1.2."), std::invalid_argument);
  EXPECT_THROW(Address::parse("1.x.2"), std::invalid_argument);
  EXPECT_THROW(Address::parse("99999"), std::invalid_argument);  // > 0xffff
}

TEST(Address, LexicographicOrdering) {
  EXPECT_LT(addr({1, 2, 3}), addr({1, 2, 4}));
  EXPECT_LT(addr({1, 2, 3}), addr({2, 0, 0}));
  EXPECT_LT(addr({1, 2}), addr({1, 2, 0}));  // shorter is smaller
  EXPECT_EQ(addr({5, 5}), addr({5, 5}));
}

TEST(Address, CommonPrefixLength) {
  EXPECT_EQ(addr({1, 2, 3}).common_prefix_length(addr({1, 2, 4})), 2u);
  EXPECT_EQ(addr({1, 2, 3}).common_prefix_length(addr({1, 2, 3})), 3u);
  EXPECT_EQ(addr({1, 2, 3}).common_prefix_length(addr({9, 2, 3})), 0u);
}

TEST(Address, DistancePerPaper) {
  // Distance = d - (longest shared prefix length); 0 for equal addresses.
  const auto a = addr({1, 2, 3});
  EXPECT_EQ(a.distance(addr({1, 2, 3})), 0u);
  EXPECT_EQ(a.distance(addr({1, 2, 9})), 1u);
  EXPECT_EQ(a.distance(addr({1, 9, 9})), 2u);
  EXPECT_EQ(a.distance(addr({9, 9, 9})), 3u);
}

TEST(Address, DistanceRequiresSameDepth) {
  EXPECT_THROW(addr({1, 2}).distance(addr({1, 2, 3})), std::logic_error);
}

TEST(Address, PrefixExtraction) {
  const auto a = addr({1, 2, 3});
  EXPECT_TRUE(a.prefix(0).is_root());
  EXPECT_EQ(a.prefix(2).length(), 2u);
  EXPECT_EQ(a.prefix(2).component(1), 2);
  EXPECT_THROW(a.prefix(4), std::logic_error);
}

TEST(Prefix, ContainsAddress) {
  const auto p = addr({1, 2, 3}).prefix(2);
  EXPECT_TRUE(p.contains(addr({1, 2, 3})));
  EXPECT_TRUE(p.contains(addr({1, 2, 9})));
  EXPECT_FALSE(p.contains(addr({1, 3, 3})));
  EXPECT_TRUE(Prefix::root().contains(addr({9, 9})));
}

TEST(Prefix, ContainsPrefix) {
  const auto p1 = addr({1, 2, 3}).prefix(1);
  const auto p2 = addr({1, 2, 3}).prefix(2);
  EXPECT_TRUE(p1.contains(p2));
  EXPECT_FALSE(p2.contains(p1));
  EXPECT_TRUE(p2.contains(p2));
}

TEST(Prefix, ChildAndParent) {
  const auto root = Prefix::root();
  const auto c = root.child(5);
  EXPECT_EQ(c.length(), 1u);
  EXPECT_EQ(c.infix(), 5);
  EXPECT_EQ(c.parent(), root);
  EXPECT_THROW(root.parent(), std::logic_error);
  EXPECT_THROW(root.infix(), std::logic_error);
}

TEST(Prefix, ToString) {
  EXPECT_EQ(Prefix::root().to_string(), "<root>");
  EXPECT_EQ(addr({128, 178}).prefix(2).to_string(), "128.178");
}

TEST(AddressHash, UsableInUnorderedSet) {
  std::unordered_set<Address, AddressHash> set;
  set.insert(addr({1, 2, 3}));
  set.insert(addr({1, 2, 3}));
  set.insert(addr({1, 2, 4}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(PrefixHash, DistinguishesPrefixes) {
  PrefixHash h;
  EXPECT_NE(h(addr({1, 2}).prefix(1)), h(addr({2, 1}).prefix(1)));
}

TEST(Address, HasPrefix) {
  const auto a = addr({3, 1, 4});
  EXPECT_TRUE(a.has_prefix(a.prefix(0)));
  EXPECT_TRUE(a.has_prefix(a.prefix(3)));
  EXPECT_FALSE(a.has_prefix(addr({3, 2, 4}).prefix(2)));
}

}  // namespace
}  // namespace pmc

// Sharded multi-group runtime: determinism, shard isolation, cross-shard
// publishing, thread-count independence, and config validation.
//
// The isolation tests are the load-bearing ones: K groups are driven
// together — now on a worker pool — yet adding a scenario action to shard
// A must leave every other shard's per-shard summary byte-identical. That
// only holds because every draw is labeled — shard-salted scenario
// streams, (pid, incarnation) process streams, (sender, sequence) network
// draws — rather than pulled from shared sequential state. The same
// isolation is what makes the thread-count tests pass: lanes decide
// wall-clock, never outcomes.
#include <gtest/gtest.h>

#include "harness/shard.hpp"

namespace pmc {
namespace {

ShardedConfig small_config(std::size_t shards) {
  ShardedConfig config;
  config.shards = shards;
  config.shard.a = 4;
  config.shard.d = 2;
  config.shard.r = 2;
  config.shard.loss = 0.05;
  config.shard.seed = 77;
  return config;
}

ScenarioScript busy_script() {
  ScenarioScript s;
  s.add(sim_ms(200), Join{1});
  s.add(sim_ms(400), PublishBurst{4, sim_ms(20)});
  s.add(sim_ms(700), CrashNodes{2});
  s.add(sim_ms(900), PublishBurst{3, sim_ms(20)});
  s.add(sim_ms(1200), RecoverNodes{1});
  return s;
}

TEST(ShardedSim, SameSeedSameSummaries) {
  const auto run = [] {
    ShardedSim sim(small_config(4));
    sim.play_all(busy_script());
    sim.run_until(sim_ms(1600));
    return sim.summary();
  };
  const ShardedSummary first = run();
  const ShardedSummary second = run();
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.shards.size(), 4u);
}

TEST(ShardedSim, ShardsDivergeFromEachOther) {
  // Same script on every shard, but shard-salted streams and per-shard
  // subscription seeds: the shards must not be clones of each other.
  ShardedSim sim(small_config(3));
  sim.play_all(busy_script());
  sim.run_until(sim_ms(1600));
  const auto summary = sim.summary();
  EXPECT_NE(summary.shards[0].fingerprint, summary.shards[1].fingerprint);
  EXPECT_NE(summary.shards[1].fingerprint, summary.shards[2].fingerprint);
}

TEST(ShardedSim, ExtraActionInOneShardLeavesOthersUntouched) {
  const auto run = [](bool extra) {
    ShardedSim sim(small_config(3));
    sim.play_all(busy_script());
    if (extra) {
      ScenarioScript more;
      more.add(sim_ms(500), LossBurst{0.5, sim_ms(300)});
      more.add(sim_ms(1000), CrashNodes{1});
      more.add(sim_ms(1100), PublishBurst{5});
      sim.play(0, more);
    }
    sim.run_until(sim_ms(1600));
    return sim.summary();
  };
  const ShardedSummary base = run(false);
  const ShardedSummary perturbed = run(true);
  // Shard 0 must see its extra churn...
  EXPECT_NE(base.shards[0], perturbed.shards[0]);
  EXPECT_EQ(perturbed.shards[0].counters.loss_bursts, 1u);
  // ...while shards 1 and 2 are byte-identical, despite sharing the
  // network, the scheduler, and the wall-clock with shard 0.
  EXPECT_EQ(base.shards[1], perturbed.shards[1]);
  EXPECT_EQ(base.shards[2], perturbed.shards[2]);
}

TEST(ShardedSim, AdaptiveShardLeavesOthersByteIdentical) {
  // Flipping online ε/τ estimation on for shard 0 alone adds digest acks,
  // estimator sampling and a re-tuned Eq. 11 bound *inside that shard* —
  // shards 1 and 2 must replay byte-identically regardless.
  const auto run = [](bool adaptive_shard0) {
    ShardedConfig config = small_config(3);
    if (adaptive_shard0) config.adaptive_shards = {0};
    ShardedSim sim(config);
    sim.play_all(busy_script());
    ScenarioScript burst;
    burst.add(sim_ms(500), LossBurst{0.4, sim_ms(600)});
    sim.play(0, burst);
    sim.run_until(sim_ms(1600));
    return sim.summary();
  };
  const ShardedSummary base = run(false);
  const ShardedSummary adaptive = run(true);
  // Shard 0 must actually be estimating...
  EXPECT_EQ(base.shards[0].env_windows, 0u);
  EXPECT_GT(adaptive.shards[0].env_windows, 0u);
  EXPECT_GT(adaptive.shards[0].env_loss_ppm, 0u);
  EXPECT_NE(base.shards[0], adaptive.shards[0]);
  // ...while the static shards are untouched, byte for byte.
  EXPECT_EQ(base.shards[1], adaptive.shards[1]);
  EXPECT_EQ(base.shards[2], adaptive.shards[2]);
}

TEST(ShardedConfigValidate, RejectsOutOfRangeAdaptiveShard) {
  ShardedConfig config = small_config(2);
  config.adaptive_shards = {2};  // only shards 0 and 1 exist
  EXPECT_THROW(config.validate(), std::logic_error);
}

TEST(ShardedSim, PartitionInOneShardLeavesOthersUntouched) {
  const auto run = [](bool split) {
    ShardedSim sim(small_config(2));
    sim.play_all(busy_script());
    if (split) {
      ScenarioScript more;
      more.add(sim_ms(300), Partition{{0, 1}, sim_ms(1200)});
      sim.play(1, more);
    }
    sim.run_until(sim_ms(1600));
    return sim.summary();
  };
  const ShardedSummary base = run(false);
  const ShardedSummary split = run(true);
  EXPECT_EQ(split.shards[1].counters.partitions, 1u);
  EXPECT_EQ(split.shards[1].counters.heals, 1u);
  EXPECT_EQ(base.shards[0], split.shards[0]);
}

TEST(ShardedSim, CrossPublishersReachEverySpannedShard) {
  ShardedConfig config = small_config(4);
  config.shard.loss = 0.0;
  config.cross.publishers = 4;  // publisher p spans shards {p, p+1 mod 4}
  config.cross.span = 2;
  config.cross.events = 3;
  config.cross.start = sim_ms(200);
  config.cross.spacing = sim_ms(100);
  ShardedSim sim(config);
  sim.run_until(sim_ms(1500));
  const auto summary = sim.summary();
  // 4 publishers x 3 events x 2 shards, every shard fully populated.
  EXPECT_EQ(summary.cross_published, 24u);
  for (const auto& shard : summary.shards) {
    // Each shard is spanned by two publishers: 2 x 3 events entered it.
    EXPECT_EQ(shard.counters.published, 6u);
    EXPECT_GT(shard.counters.delivered, 0u);
    EXPECT_GT(shard.latency_samples, 0u);
  }
}

TEST(ShardedSim, AggregateSumsShards) {
  ShardedSim sim(small_config(3));
  sim.play_all(busy_script());
  sim.run_until(sim_ms(1600));
  const auto summary = sim.summary();
  std::uint64_t published = 0, delivered = 0;
  std::size_t live = 0;
  for (const auto& shard : summary.shards) {
    published += shard.counters.published;
    delivered += shard.counters.delivered;
    live += shard.live;
  }
  EXPECT_EQ(summary.aggregate.counters.published, published);
  EXPECT_EQ(summary.aggregate.counters.delivered, delivered);
  EXPECT_EQ(summary.aggregate.live, live);
}

TEST(ShardedSim, LossBurstIsScopedToItsShard) {
  // With a very aggressive loss burst in shard 0 only, shard 1's network
  // behavior is untouched — covered byte-for-byte by the isolation test
  // above; here we additionally pin the scoped-loss counters.
  ShardedSim sim(small_config(2));
  ScenarioScript burst;
  burst.add(sim_ms(300), LossBurst{0.9, sim_ms(400)});
  sim.play(0, burst);
  sim.run_until(sim_ms(1000));
  const auto summary = sim.summary();
  EXPECT_EQ(summary.shards[0].counters.loss_bursts, 1u);
  EXPECT_EQ(summary.shards[0].counters.loss_restores, 1u);
  EXPECT_EQ(summary.shards[1].counters.loss_bursts, 0u);
}

TEST(ShardedConfigValidate, RejectsNonsense) {
  ShardedConfig config = small_config(2);
  config.shards = 0;
  EXPECT_THROW(config.validate(), std::logic_error);

  config = small_config(2);
  config.cross.publishers = 1;
  config.cross.span = 3;  // span > shards
  EXPECT_THROW(config.validate(), std::logic_error);

  config = small_config(2);
  config.cross.publishers = 1;
  config.cross.events = 0;
  EXPECT_THROW(config.validate(), std::logic_error);

  config = small_config(2);
  config.shard.a = 0;  // invalid shard template bubbles up
  EXPECT_THROW(config.validate(), std::logic_error);
}

TEST(ShardedSim, PidRangesAreDisjoint) {
  ShardedSim sim(small_config(3));
  const std::size_t capacity = sim.config().shard.capacity();
  for (std::size_t s = 0; s < sim.shard_count(); ++s)
    EXPECT_EQ(sim.shard(s).pid_base(), s * 2 * capacity);
}

TEST(ShardedSim, ThreadCountNeverChangesTheSummary) {
  // The full churn workload — joins, crashes, publishes, recoveries, a
  // shard-scoped partition AND cross-shard publishers — must produce the
  // same bytes on 1, 2, 3, and 8 lanes. Not just the fingerprints: the
  // entire ShardedSummary, per-shard summaries included.
  const auto run = [](std::size_t threads) {
    ShardedConfig config = small_config(5);
    config.cross.publishers = 2;
    config.cross.span = 3;
    config.cross.events = 4;
    config.cross.start = sim_ms(250);
    config.cross.spacing = sim_ms(80);
    config.threads = threads;
    ShardedSim sim(config);
    sim.play_all(busy_script());
    ScenarioScript split;
    split.add(sim_ms(300), Partition{{0, 1}, sim_ms(1200)});
    sim.play(2, split);
    sim.run_until(sim_ms(1600));
    return sim.summary();
  };
  const ShardedSummary serial = run(1);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    EXPECT_EQ(run(threads), serial) << "threads=" << threads;
  }
}

TEST(ShardedSim, ThreadsZeroMeansHardwareConcurrency) {
  ShardedConfig config = small_config(4);
  config.threads = 0;
  ShardedSim sim(config);
  EXPECT_GE(sim.thread_count(), 1u);
  // Never more lanes than shards — extras would only idle at the barrier.
  EXPECT_LE(sim.thread_count(), 4u);
}

TEST(ShardedSim, EnqueuedPublishLandsAtTheNextBarrier) {
  const auto run = [](bool enqueue, std::size_t threads) {
    ShardedConfig config = small_config(3);
    config.threads = threads;
    ShardedSim sim(config);
    if (enqueue) {
      const std::size_t targets[] = {1, 2};
      sim.router().enqueue(EventId{4242, 0}, 0.25, targets);
    }
    sim.run_until(sim_ms(1200));
    return sim.summary();
  };
  const ShardedSummary base = run(false, 1);
  const ShardedSummary routed = run(true, 1);
  // The buffered publish entered exactly shards 1 and 2 at the first
  // barrier (both fully populated, so it cannot have skipped)...
  EXPECT_EQ(routed.cross_published, 2u);
  EXPECT_EQ(routed.shards[1].counters.published, 1u);
  EXPECT_EQ(routed.shards[2].counters.published, 1u);
  // ...left shard 0 byte-identical...
  EXPECT_EQ(base.shards[0], routed.shards[0]);
  EXPECT_EQ(routed.shards[0].counters.published, 0u);
  // ...and unfolds the same on many lanes.
  EXPECT_EQ(run(true, 8), routed);
}

}  // namespace
}  // namespace pmc

// Sustained multi-event stream behaviour: overlapping disseminations must
// keep per-event reliability, bounded buffers, and proportional cost.
#include <gtest/gtest.h>

#include "analysis/markov.hpp"
#include "harness/experiment.hpp"

namespace pmc {
namespace {

StreamConfig small_stream() {
  StreamConfig s;
  s.base.a = 5;
  s.base.d = 2;
  s.base.r = 2;
  s.base.fanout = 3;
  s.base.pd = 0.6;
  s.base.loss = 0.05;
  s.base.seed = 17;
  s.events = 30;
  s.inter_arrival = sim_ms(150);
  return s;
}

TEST(Stream, PerEventDeliveryStaysHigh) {
  const auto result = run_stream_experiment(small_stream());
  EXPECT_EQ(result.per_event_delivery.count(), 30u);
  EXPECT_GT(result.per_event_delivery.mean(), 0.9);
  // Even the worst event of the stream delivers to most interested.
  EXPECT_GT(result.per_event_delivery.quantile(0.05), 0.6);
}

TEST(Stream, CostScalesPerEvent) {
  // Messages per event per process should be in the same band as a
  // single-event run — concurrent events don't multiply each other's cost.
  auto stream = small_stream();
  const auto multi = run_stream_experiment(stream);

  auto single = stream;
  single.events = 1;
  const auto one = run_stream_experiment(single);
  EXPECT_LT(multi.messages_per_event_per_process,
            one.messages_per_event_per_process * 2.0);
}

TEST(Stream, DrainsPromptlyAfterLastPublish) {
  const auto result = run_stream_experiment(small_stream());
  // Quiescence within a round-bound's worth of periods after the last
  // publish (no unbounded backlog accumulation).
  EXPECT_LT(result.drain_periods, 40.0);
}

TEST(Stream, BackToBackBurst) {
  // All events published in the same period: the per-depth buffers hold
  // many events at once and still drain.
  auto stream = small_stream();
  stream.inter_arrival = sim_us(1);
  stream.events = 20;
  const auto result = run_stream_experiment(stream);
  EXPECT_GT(result.per_event_delivery.mean(), 0.85);
}

TEST(Stream, DeterministicAcrossInvocations) {
  const auto a = run_stream_experiment(small_stream());
  const auto b = run_stream_experiment(small_stream());
  EXPECT_DOUBLE_EQ(a.per_event_delivery.mean(), b.per_event_delivery.mean());
  EXPECT_DOUBLE_EQ(a.messages_per_event_per_process,
                   b.messages_per_event_per_process);
}

// --- Monte-Carlo cross-validation of the Sec. 4.2 chain --------------------

TEST(ModelValidation, FlatGossipMatchesMarkovChain) {
  // Simulate flat-group gossip (d=1) many times; the mean infected count
  // after the full run must sit near the chain's prediction at the round
  // the algorithm stops (ceil of Pittel's bound).
  const std::size_t n = 40;
  const double fanout = 3.0;
  const double loss = 0.1;

  Accumulator simulated;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    ExperimentConfig c;
    c.a = n;
    c.d = 1;
    c.r = 1;
    c.fanout = 3;
    c.pd = 1.0;
    c.loss = loss;
    c.runs = 1;
    c.seed = 900 + seed;
    const auto r = run_pmcast_experiment(c);
    simulated.add(r.delivery.mean());
  }

  EnvParams env;
  env.loss = loss;
  const RoundEstimator estimator;
  const auto rounds = RoundEstimator::executed_rounds(
      estimator.faulty(n, fanout, env));
  const auto chain = InfectionChain::flat(n, fanout, env);
  const double predicted =
      chain.expected_infected(rounds) / static_cast<double>(n);

  EXPECT_NEAR(simulated.mean(), predicted, 0.08);
}

}  // namespace
}  // namespace pmc

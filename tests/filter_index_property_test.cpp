// Randomized oracle check for the predicate index: PredicateIndex::match
// must return exactly the ids whose Predicate::match(e) is true — over all
// predicate shapes (every Kind and CmpOp, nested And/Or/Not, int/float/
// string constants, NaN/infinities, absent attributes, cross-kind values),
// and keep doing so while subscriptions are added and removed mid-stream.
// The naive SubscriptionMatcher *is* the oracle (a literal loop over
// Predicate::match), so this also pins the seam's equivalence.
#include "filter/index.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace pmc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

const char* const kAttrs[] = {"a", "b", "c", "d", "e"};

Value random_value(Rng& rng, bool allow_nonfinite) {
  switch (rng.next_below(allow_nonfinite ? 7 : 5)) {
    case 0: return Value(static_cast<std::int64_t>(rng.next_in(-2, 3)));
    case 1: return Value(static_cast<double>(rng.next_in(-2, 3)));
    case 2: return Value(rng.next_double() * 4.0 - 2.0);
    case 3: {
      const char* const pool[] = {"a", "b", "v1", "quo\"te", "back\\slash"};
      return Value(pool[rng.next_below(5)]);
    }
    case 4: return Value(rng.bernoulli(0.5) ? 0.0 : -0.0);
    case 5: return Value(rng.bernoulli(0.5) ? kInf : -kInf);
    default: return Value(kNaN);
  }
}

CmpOp random_op(Rng& rng) {
  const CmpOp ops[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                       CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
  return ops[rng.next_below(6)];
}

PredicatePtr random_predicate(Rng& rng, std::size_t depth) {
  const auto roll = rng.next_below(100);
  if (depth == 0 || roll < 55) {
    if (roll < 2) return Predicate::wildcard();
    if (roll < 4) return Predicate::never();
    return Predicate::compare(kAttrs[rng.next_below(5)], random_op(rng),
                              random_value(rng, /*allow_nonfinite=*/true));
  }
  if (roll < 70) return Predicate::negation(random_predicate(rng, depth - 1));
  std::vector<PredicatePtr> children;
  const auto n = 2 + rng.next_below(2);
  for (std::uint64_t i = 0; i < n; ++i)
    children.push_back(random_predicate(rng, depth - 1));
  return roll < 85 ? Predicate::conj(std::move(children))
                   : Predicate::disj(std::move(children));
}

Event random_event(Rng& rng) {
  Event e;
  for (const char* attr : kAttrs)
    if (rng.bernoulli(0.7))
      e.with(attr, random_value(rng, /*allow_nonfinite=*/true));
  return e;
}

void expect_same_matches(const SubscriptionMatcher& naive,
                         const SubscriptionMatcher& index, const Event& e,
                         const char* where) {
  std::vector<SubscriptionId> expected, actual;
  naive.match(e, expected);
  index.match(e, actual);
  ASSERT_EQ(expected, actual) << where << " event=" << e.to_string();
}

TEST(FilterIndexProperty, BulkBuildMatchesOracle) {
  Rng rng(0xf11e501);
  SubscriptionMatcher naive(MatcherKind::NaiveScan);
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  for (SubscriptionId i = 0; i < 10000; ++i) {
    auto pred = random_predicate(rng, 3);
    naive.add(i * 7 + 1, pred);
    index.add(i * 7 + 1, std::move(pred));
  }
  ASSERT_EQ(naive.size(), index.size());
  for (int i = 0; i < 200; ++i)
    expect_same_matches(naive, index, random_event(rng), "bulk");
  // The index must have done real indexing, not degenerated to the scan
  // bucket wholesale.
  ASSERT_NE(index.index(), nullptr);
  EXPECT_LT(index.index()->scan_bucket_size(), index.size() / 2);
}

TEST(FilterIndexProperty, IncrementalAddRemoveMidStream) {
  Rng rng(0xc0ffee);
  SubscriptionMatcher naive(MatcherKind::NaiveScan);
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  std::vector<SubscriptionId> alive;
  SubscriptionId next_id = 1;

  for (int step = 0; step < 4000; ++step) {
    const auto roll = rng.next_below(10);
    if (roll < 4 || alive.empty()) {
      auto pred = random_predicate(rng, 3);
      naive.add(next_id, pred);
      index.add(next_id, std::move(pred));
      alive.push_back(next_id);
      ++next_id;
    } else if (roll < 7) {
      const auto pick = rng.next_below(alive.size());
      const SubscriptionId id = alive[pick];
      alive[pick] = alive.back();
      alive.pop_back();
      ASSERT_TRUE(naive.remove(id));
      ASSERT_TRUE(index.remove(id));
      EXPECT_FALSE(index.remove(id));  // already gone
    } else {
      expect_same_matches(naive, index, random_event(rng), "churn");
    }
    ASSERT_EQ(naive.size(), index.size());
  }
}

// Removing most of the audience forces the lazy-compaction rebuild; matches
// must be unaffected before and after.
TEST(FilterIndexProperty, CompactionPreservesMatches) {
  Rng rng(0xdeadbe);
  SubscriptionMatcher naive(MatcherKind::NaiveScan);
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  for (SubscriptionId i = 0; i < 600; ++i) {
    auto pred = random_predicate(rng, 3);
    naive.add(i, pred);
    index.add(i, std::move(pred));
  }
  for (SubscriptionId i = 0; i < 600; ++i) {
    if (i % 5 == 0) continue;  // keep every fifth
    ASSERT_TRUE(naive.remove(i));
    ASSERT_TRUE(index.remove(i));
  }
  ASSERT_EQ(index.size(), 120u);
  for (int i = 0; i < 100; ++i)
    expect_same_matches(naive, index, random_event(rng), "post-compaction");
}

// Satellite lock: the index decomposition must not collapse Not(Eq(a,v))
// into Ne(a,v) — they differ exactly on events lacking `a`.
TEST(FilterIndexProperty, AbsentAttributeNotVersusNe) {
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  index.add(1, Predicate::negation(
                   Predicate::compare("a", CmpOp::Eq, Value(7))));
  index.add(2, Predicate::compare("a", CmpOp::Ne, Value(7)));

  const auto absent = Event{}.with("other", Value(1));
  EXPECT_EQ(index.match(absent), (std::vector<SubscriptionId>{1}));
  EXPECT_EQ(index.match(Event{}.with("a", Value(8))),
            (std::vector<SubscriptionId>{1, 2}));
  EXPECT_EQ(index.match(Event{}.with("a", Value(7))),
            (std::vector<SubscriptionId>{}));
}

// A negated conjunction decomposes through De Morgan into negated atoms;
// absent attributes make each negated comparison true.
TEST(FilterIndexProperty, NotOverAndMatchesAbsentAttributes) {
  SubscriptionMatcher naive(MatcherKind::NaiveScan);
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  const auto pred = Predicate::negation(
      Predicate::conj({Predicate::compare("a", CmpOp::Ge, Value(1)),
                       Predicate::compare("b", CmpOp::Eq, Value("x"))}));
  naive.add(1, pred);
  index.add(1, pred);
  for (const Event& e :
       {Event{}, Event{}.with("a", Value(0)), Event{}.with("a", Value(2)),
        Event{}.with("a", Value(2)).with("b", Value("x")),
        Event{}.with("b", Value("x")), Event{}.with("b", Value("y"))}) {
    expect_same_matches(naive, index, e, "not-over-and");
  }
}

// Interval-lane mirror of the interval edge cases: bound inclusivity at
// equal endpoints, NaN and infinities as event values and as constants.
TEST(FilterIndexProperty, IntervalLaneEdgeCases) {
  SubscriptionMatcher naive(MatcherKind::NaiveScan);
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  SubscriptionId id = 1;
  const auto add = [&](PredicatePtr p) {
    naive.add(id, p);
    index.add(id, std::move(p));
    ++id;
  };
  add(Predicate::conj({Predicate::compare("u", CmpOp::Ge, Value(0.5)),
                       Predicate::compare("u", CmpOp::Lt, Value(0.7))}));
  add(Predicate::conj({Predicate::compare("u", CmpOp::Gt, Value(0.5)),
                       Predicate::compare("u", CmpOp::Le, Value(0.7))}));
  add(Predicate::conj({Predicate::compare("u", CmpOp::Ge, Value(0.5)),
                       Predicate::compare("u", CmpOp::Le, Value(0.5))}));
  // Inverted bounds from "constant folding" upstream: never matches.
  add(Predicate::conj({Predicate::compare("u", CmpOp::Ge, Value(0.7)),
                       Predicate::compare("u", CmpOp::Le, Value(0.5))}));
  add(Predicate::compare("u", CmpOp::Ge, Value(-kInf)));
  add(Predicate::compare("u", CmpOp::Le, Value(kInf)));
  add(Predicate::compare("u", CmpOp::Gt, Value(kInf)));    // never
  add(Predicate::compare("u", CmpOp::Ge, Value(kInf)));    // only +inf
  add(Predicate::compare("u", CmpOp::Lt, Value(kNaN)));    // never
  add(Predicate::compare("u", CmpOp::Eq, Value(kNaN)));    // never
  add(Predicate::compare("u", CmpOp::Ne, Value(kNaN)));    // any present u
  for (const double x : {0.4999, 0.5, 0.5001, 0.6, 0.7, 0.70001, -kInf, kInf,
                         kNaN, 0.0, -0.0}) {
    expect_same_matches(naive, index,
                        Event{}.with("u", Value(x)).with("w", Value(1)),
                        "interval-edges");
  }
  expect_same_matches(naive, index, Event{}.with("w", Value(1)),
                      "interval-edges-absent");
}

// Predicates whose DNF exceeds the clause budget must land in the scan
// bucket and still match exactly.
TEST(FilterIndexProperty, BudgetOverflowFallsBackToScan) {
  Rng rng(0xb1d9e7);
  // And of 7 two-way Ors = 2^7 = 128 clauses > default budget of 32.
  std::vector<PredicatePtr> ors;
  for (int i = 0; i < 7; ++i) {
    const std::string attr = std::string(1, static_cast<char>('a' + i));
    ors.push_back(
        Predicate::disj({Predicate::compare(attr, CmpOp::Eq, Value(0)),
                         Predicate::compare(attr, CmpOp::Eq, Value(1))}));
  }
  const auto pred = Predicate::conj(std::move(ors));

  SubscriptionMatcher naive(MatcherKind::NaiveScan);
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  naive.add(42, pred);
  index.add(42, pred);
  ASSERT_NE(index.index(), nullptr);
  EXPECT_EQ(index.index()->scan_bucket_size(), 1u);

  for (int i = 0; i < 200; ++i) {
    Event e;
    for (int a = 0; a < 7; ++a)
      e.with(std::string(1, static_cast<char>('a' + a)),
             Value(static_cast<std::int64_t>(rng.next_below(3))));
    expect_same_matches(naive, index, e, "budget-overflow");
  }
  // Removing the scan-bucket subscription works like any other removal.
  ASSERT_TRUE(index.remove(42));
  EXPECT_EQ(index.index()->scan_bucket_size(), 0u);
  EXPECT_TRUE(index.match(Event{}.with("a", Value(0))).empty());
}

TEST(FilterIndexProperty, WildcardAndNeverSubscriptions) {
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  index.add(5, Subscription());  // wildcard
  index.add(9, Predicate::never());
  index.add(3, Predicate::compare("a", CmpOp::Gt, Value(0)));
  EXPECT_EQ(index.match(Event{}.with("z", Value("?"))),
            (std::vector<SubscriptionId>{5}));
  EXPECT_EQ(index.match(Event{}.with("a", Value(1))),
            (std::vector<SubscriptionId>{3, 5}));
  ASSERT_TRUE(index.remove(5));
  EXPECT_EQ(index.match(Event{}.with("z", Value("?"))),
            (std::vector<SubscriptionId>{}));
}

// The counter surface the bench gate is built on: index work must be well
// below the naive evaluation count on a selective workload.
TEST(FilterIndexProperty, WorkCountersAdvanceAndStaySublinear) {
  Rng rng(0x5eed);
  SubscriptionMatcher naive(MatcherKind::NaiveScan);
  SubscriptionMatcher index(MatcherKind::IndexLanes);
  for (SubscriptionId i = 0; i < 2000; ++i) {
    const double lo = rng.next_double() * 0.99;
    const auto pred =
        Predicate::conj({Predicate::compare("u", CmpOp::Ge, Value(lo)),
                         Predicate::compare("u", CmpOp::Lt, Value(lo + 0.01))});
    naive.add(i, pred);
    index.add(i, pred);
  }
  for (int i = 0; i < 50; ++i)
    expect_same_matches(
        naive, index,
        Event{}.with("u", Value(rng.next_double())), "counters");
  EXPECT_EQ(naive.work_units(), 2000u * 50u);
  EXPECT_GT(index.work_units(), 0u);
  // ~1% selectivity: the index should do far less than half the naive work.
  EXPECT_LT(index.work_units(), naive.work_units() / 2);
}

}  // namespace
}  // namespace pmc

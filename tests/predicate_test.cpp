#include "filter/predicate.hpp"

#include <gtest/gtest.h>

namespace pmc {
namespace {

Event make_event() {
  Event e;
  e.with("b", 2).with("c", 41.5).with("e", "Bob").with("z", 20000);
  return e;
}

TEST(Predicate, WildcardMatchesEverything) {
  EXPECT_TRUE(Predicate::wildcard()->match(make_event()));
  EXPECT_TRUE(Predicate::wildcard()->match(Event{}));
}

TEST(Predicate, NeverMatchesNothing) {
  EXPECT_FALSE(Predicate::never()->match(make_event()));
}

TEST(Predicate, NumericComparisons) {
  const auto e = make_event();
  EXPECT_TRUE(Predicate::compare("b", CmpOp::Eq, Value(2))->match(e));
  EXPECT_TRUE(Predicate::compare("b", CmpOp::Eq, Value(2.0))->match(e));
  EXPECT_FALSE(Predicate::compare("b", CmpOp::Eq, Value(3))->match(e));
  EXPECT_TRUE(Predicate::compare("c", CmpOp::Gt, Value(40.0))->match(e));
  EXPECT_FALSE(Predicate::compare("c", CmpOp::Gt, Value(41.5))->match(e));
  EXPECT_TRUE(Predicate::compare("c", CmpOp::Ge, Value(41.5))->match(e));
  EXPECT_TRUE(Predicate::compare("z", CmpOp::Le, Value(50000))->match(e));
  EXPECT_TRUE(Predicate::compare("z", CmpOp::Ne, Value(1))->match(e));
}

TEST(Predicate, StringComparisons) {
  const auto e = make_event();
  EXPECT_TRUE(Predicate::compare("e", CmpOp::Eq, Value("Bob"))->match(e));
  EXPECT_FALSE(Predicate::compare("e", CmpOp::Eq, Value("Tom"))->match(e));
  EXPECT_TRUE(Predicate::compare("e", CmpOp::Ne, Value("Tom"))->match(e));
  EXPECT_TRUE(Predicate::compare("e", CmpOp::Lt, Value("Zed"))->match(e));
}

TEST(Predicate, CrossKindComparison) {
  const auto e = make_event();
  // b is numeric; comparing against a string matches only Ne.
  EXPECT_FALSE(Predicate::compare("b", CmpOp::Eq, Value("2"))->match(e));
  EXPECT_TRUE(Predicate::compare("b", CmpOp::Ne, Value("2"))->match(e));
}

TEST(Predicate, MissingAttributeIsFalse) {
  const auto e = make_event();
  EXPECT_FALSE(Predicate::compare("nope", CmpOp::Eq, Value(1))->match(e));
  EXPECT_FALSE(Predicate::compare("nope", CmpOp::Ne, Value(1))->match(e));
}

TEST(Predicate, ConjunctionSemantics) {
  const auto e = make_event();
  const auto both = Predicate::conj(
      {Predicate::compare("b", CmpOp::Eq, Value(2)),
       Predicate::compare("c", CmpOp::Gt, Value(40.0))});
  EXPECT_TRUE(both->match(e));
  const auto one_false = Predicate::conj(
      {Predicate::compare("b", CmpOp::Eq, Value(2)),
       Predicate::compare("c", CmpOp::Gt, Value(100.0))});
  EXPECT_FALSE(one_false->match(e));
}

TEST(Predicate, DisjunctionSemantics) {
  const auto e = make_event();
  const auto either = Predicate::disj(
      {Predicate::compare("e", CmpOp::Eq, Value("Bob")),
       Predicate::compare("e", CmpOp::Eq, Value("Tom"))});
  EXPECT_TRUE(either->match(e));
  const auto neither = Predicate::disj(
      {Predicate::compare("e", CmpOp::Eq, Value("Ann")),
       Predicate::compare("e", CmpOp::Eq, Value("Tom"))});
  EXPECT_FALSE(neither->match(e));
}

TEST(Predicate, ConjFoldsConstants) {
  EXPECT_EQ(Predicate::conj({})->kind(), Predicate::Kind::True);
  EXPECT_EQ(Predicate::conj({Predicate::wildcard(), Predicate::wildcard()})
                ->kind(),
            Predicate::Kind::True);
  EXPECT_EQ(
      Predicate::conj({Predicate::never(),
                       Predicate::compare("b", CmpOp::Eq, Value(1))})
          ->kind(),
      Predicate::Kind::False);
}

TEST(Predicate, DisjFoldsConstants) {
  EXPECT_EQ(Predicate::disj({})->kind(), Predicate::Kind::False);
  EXPECT_EQ(
      Predicate::disj({Predicate::wildcard(), Predicate::never()})->kind(),
      Predicate::Kind::True);
  EXPECT_EQ(Predicate::disj({Predicate::never(), Predicate::never()})->kind(),
            Predicate::Kind::False);
}

TEST(Predicate, NestedFlattening) {
  const auto nested = Predicate::conj(
      {Predicate::conj({Predicate::compare("b", CmpOp::Gt, Value(0)),
                        Predicate::compare("b", CmpOp::Lt, Value(10))}),
       Predicate::compare("c", CmpOp::Gt, Value(0.0))});
  EXPECT_EQ(nested->kind(), Predicate::Kind::And);
  EXPECT_EQ(nested->children().size(), 3u);
}

TEST(Predicate, SingleChildCollapses) {
  const auto p = Predicate::compare("b", CmpOp::Eq, Value(1));
  EXPECT_EQ(Predicate::conj({p}).get(), p.get());
  EXPECT_EQ(Predicate::disj({p}).get(), p.get());
}

TEST(Predicate, NegationOfComparisonStaysANotNode) {
  // negation() must NOT fold !(b < 5) into b >= 5: the two differ on events
  // with no `b` attribute (see the absent-attribute lock below).
  const auto p = Predicate::negation(
      Predicate::compare("b", CmpOp::Lt, Value(5)));
  ASSERT_EQ(p->kind(), Predicate::Kind::Not);
  EXPECT_EQ(p->child()->kind(), Predicate::Kind::Compare);
  EXPECT_EQ(p->child()->op(), CmpOp::Lt);
}

// Absent-attribute semantics lock: a comparison on an attribute the event
// does not carry is false, and Not flips it. Therefore Not(Eq(a, v)) matches
// an event lacking `a` while the op-negated Ne(a, v) does not — any
// normalization (negation(), index decomposition, ...) that collapses the
// two is wrong.
TEST(Predicate, NotOfCompareDiffersFromOpNegationOnAbsentAttribute) {
  const auto absent = Event{}.with("other", Value(1));
  const auto not_of_eq = Predicate::negation(
      Predicate::compare("a", CmpOp::Eq, Value(7)));
  const auto ne = Predicate::compare("a", CmpOp::Ne, Value(7));
  EXPECT_TRUE(not_of_eq->match(absent));
  EXPECT_FALSE(ne->match(absent));

  // On events that DO carry the attribute the two agree.
  EXPECT_FALSE(not_of_eq->match(Event{}.with("a", Value(7))));
  EXPECT_FALSE(ne->match(Event{}.with("a", Value(7))));
  EXPECT_TRUE(not_of_eq->match(Event{}.with("a", Value(8))));
  EXPECT_TRUE(ne->match(Event{}.with("a", Value(8))));
}

TEST(Predicate, NotOfOrderedCompareMatchesAbsentAttribute) {
  const auto absent = Event{}.with("other", Value("x"));
  for (const CmpOp op :
       {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge}) {
    const auto cmp = Predicate::compare("a", op, Value(3.5));
    EXPECT_FALSE(cmp->match(absent)) << to_string(op);
    EXPECT_TRUE(Predicate::negation(cmp)->match(absent)) << to_string(op);
  }
}

TEST(Predicate, DoubleNegationCancels) {
  const auto base = Predicate::conj(
      {Predicate::compare("b", CmpOp::Eq, Value(1)),
       Predicate::compare("c", CmpOp::Eq, Value(2.0))});
  const auto once = Predicate::negation(base);
  EXPECT_EQ(once->kind(), Predicate::Kind::Not);
  const auto twice = Predicate::negation(once);
  EXPECT_EQ(twice.get(), base.get());
}

TEST(Predicate, NegationOfConstants) {
  EXPECT_EQ(Predicate::negation(Predicate::wildcard())->kind(),
            Predicate::Kind::False);
  EXPECT_EQ(Predicate::negation(Predicate::never())->kind(),
            Predicate::Kind::True);
}

TEST(Predicate, NotMatchSemantics) {
  const auto e = make_event();
  const auto p = Predicate::negation(Predicate::conj(
      {Predicate::compare("b", CmpOp::Eq, Value(2)),
       Predicate::compare("e", CmpOp::Eq, Value("Tom"))}));
  EXPECT_TRUE(p->match(e));  // inner And is false (e != Tom)
}

TEST(Predicate, AccessorContracts) {
  const auto cmp = Predicate::compare("b", CmpOp::Le, Value(3));
  EXPECT_EQ(cmp->attr(), "b");
  EXPECT_EQ(cmp->op(), CmpOp::Le);
  EXPECT_EQ(cmp->value(), Value(3));
  EXPECT_THROW(cmp->children(), std::logic_error);
  EXPECT_THROW(Predicate::wildcard()->attr(), std::logic_error);
}

TEST(Predicate, ToStringRoundTripish) {
  const auto p = Predicate::conj(
      {Predicate::compare("b", CmpOp::Gt, Value(3)),
       Predicate::compare("c", CmpOp::Lt, Value(220.0))});
  EXPECT_EQ(p->to_string(), "(b > 3 && c < 220)");
}

TEST(CmpOpNegate, AllCases) {
  EXPECT_EQ(negate(CmpOp::Eq), CmpOp::Ne);
  EXPECT_EQ(negate(CmpOp::Ne), CmpOp::Eq);
  EXPECT_EQ(negate(CmpOp::Lt), CmpOp::Ge);
  EXPECT_EQ(negate(CmpOp::Ge), CmpOp::Lt);
  EXPECT_EQ(negate(CmpOp::Le), CmpOp::Gt);
  EXPECT_EQ(negate(CmpOp::Gt), CmpOp::Le);
}

}  // namespace
}  // namespace pmc

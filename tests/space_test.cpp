#include "addr/space.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pmc {
namespace {

TEST(AddressSpace, RegularCapacity) {
  EXPECT_EQ(AddressSpace::regular(3, 2).capacity(), 9u);
  EXPECT_EQ(AddressSpace::regular(22, 3).capacity(), 10648u);
  EXPECT_EQ(AddressSpace::regular(1, 5).capacity(), 1u);
}

TEST(AddressSpace, MixedArities) {
  const AddressSpace space({2, 3, 4});
  EXPECT_EQ(space.capacity(), 24u);
  EXPECT_EQ(space.depth(), 3u);
  EXPECT_EQ(space.arity(1), 3);
}

TEST(AddressSpace, CapacitySaturates) {
  // 2^16 components, many levels: must saturate, not overflow.
  const AddressSpace space(std::vector<AddrComponent>(8, 65535));
  EXPECT_EQ(space.capacity(), std::numeric_limits<std::uint64_t>::max());
}

TEST(AddressSpace, AtDecodesMixedRadix) {
  const AddressSpace space({2, 3});
  EXPECT_EQ(space.at(0).to_string(), "0.0");
  EXPECT_EQ(space.at(1).to_string(), "0.1");
  EXPECT_EQ(space.at(2).to_string(), "0.2");
  EXPECT_EQ(space.at(3).to_string(), "1.0");
  EXPECT_EQ(space.at(5).to_string(), "1.2");
  EXPECT_THROW(space.at(6), std::logic_error);
}

TEST(AddressSpace, EnumerateLexicographicAndComplete) {
  const auto space = AddressSpace::regular(3, 2);
  const auto all = space.enumerate();
  ASSERT_EQ(all.size(), 9u);
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1], all[i]);
  for (const auto& a : all) EXPECT_TRUE(space.valid(a));
}

TEST(AddressSpace, Valid) {
  const auto space = AddressSpace::regular(3, 2);
  EXPECT_TRUE(space.valid(Address::parse("2.2")));
  EXPECT_FALSE(space.valid(Address::parse("3.0")));   // component too big
  EXPECT_FALSE(space.valid(Address::parse("1.1.1")));  // wrong depth
}

TEST(AddressSpace, SampleDistinctAndValid) {
  const auto space = AddressSpace::regular(5, 3);
  Rng rng(9);
  const auto sample = space.sample(50, rng);
  EXPECT_EQ(sample.size(), 50u);
  std::set<Address> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 50u);
  for (const auto& a : sample) EXPECT_TRUE(space.valid(a));
}

TEST(AddressSpace, SampleAllIsWholeSpace) {
  const auto space = AddressSpace::regular(3, 2);
  Rng rng(10);
  auto sample = space.sample(9, rng);
  EXPECT_EQ(std::set<Address>(sample.begin(), sample.end()).size(), 9u);
}

TEST(AddressSpace, SampleTooManyThrows) {
  const auto space = AddressSpace::regular(2, 2);
  Rng rng(1);
  EXPECT_THROW(space.sample(5, rng), std::logic_error);
}

TEST(AddressSpace, ZeroArityRejected) {
  EXPECT_THROW(AddressSpace({2, 0, 2}), std::logic_error);
  EXPECT_THROW(AddressSpace({}), std::logic_error);
}

}  // namespace
}  // namespace pmc

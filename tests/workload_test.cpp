#include "harness/workload.hpp"

#include <gtest/gtest.h>

namespace pmc {
namespace {

TEST(IntervalSubscription, PlainInterval) {
  const auto sub = interval_subscription(0.2, 0.3);  // [0.2, 0.5)
  EXPECT_TRUE(sub.match(make_event_at(0, 0, 0.2)));
  EXPECT_TRUE(sub.match(make_event_at(0, 0, 0.49)));
  EXPECT_FALSE(sub.match(make_event_at(0, 0, 0.5)));
  EXPECT_FALSE(sub.match(make_event_at(0, 0, 0.1)));
}

TEST(IntervalSubscription, WrapAround) {
  const auto sub = interval_subscription(0.9, 0.3);  // [0.9,1) ∪ [0,0.2)
  EXPECT_TRUE(sub.match(make_event_at(0, 0, 0.95)));
  EXPECT_TRUE(sub.match(make_event_at(0, 0, 0.1)));
  EXPECT_FALSE(sub.match(make_event_at(0, 0, 0.2)));
  EXPECT_FALSE(sub.match(make_event_at(0, 0, 0.5)));
}

TEST(IntervalSubscription, FullWidthIsWildcard) {
  const auto sub = interval_subscription(0.4, 1.0);
  EXPECT_TRUE(sub.is_wildcard());
  EXPECT_TRUE(sub.match(make_event_at(0, 0, 0.0)));
}

TEST(IntervalSubscription, ZeroWidthMatchesNothing) {
  const auto sub = interval_subscription(0.4, 0.0);
  for (double u : {0.0, 0.4, 0.9})
    EXPECT_FALSE(sub.match(make_event_at(0, 0, u)));
}

TEST(IntervalSubscription, InvalidArgsRejected) {
  EXPECT_THROW(interval_subscription(1.0, 0.5), std::logic_error);
  EXPECT_THROW(interval_subscription(-0.1, 0.5), std::logic_error);
  EXPECT_THROW(interval_subscription(0.5, 1.5), std::logic_error);
}

TEST(UniformInterestMembers, OnePerAddress) {
  Rng rng(1);
  const auto space = AddressSpace::regular(4, 2);
  const auto members = uniform_interest_members(space, 0.5, rng);
  EXPECT_EQ(members.size(), 16u);
  for (std::size_t i = 1; i < members.size(); ++i)
    EXPECT_LT(members[i - 1].address, members[i].address);
}

TEST(UniformInterestMembers, MatchProbabilityApproximatesPd) {
  // The load-bearing property of the workload: every event matches each
  // process independently with probability pd (Sec. 4.1's model).
  Rng rng(2);
  const auto space = AddressSpace::regular(10, 2);  // 100 processes
  const double pd = 0.35;
  const auto members = uniform_interest_members(space, pd, rng);
  std::size_t hits = 0, trials = 0;
  Rng ev_rng(3);
  for (int t = 0; t < 300; ++t) {
    const Event e = make_uniform_event(0, static_cast<std::uint64_t>(t),
                                       ev_rng);
    for (const auto& m : members) {
      ++trials;
      if (m.subscription.match(e)) ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(trials), pd,
              0.02);
}

TEST(UniformInterestMembers, IndependenceAcrossProcesses) {
  // Offsets are iid uniform, so the correlation between two processes'
  // match indicators should be near zero.
  Rng rng(4);
  const auto space = AddressSpace::regular(2, 1);
  const double pd = 0.4;
  const auto members = uniform_interest_members(space, pd, rng);
  Rng ev_rng(5);
  int both = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const Event e = make_uniform_event(0, static_cast<std::uint64_t>(t),
                                       ev_rng);
    if (members[0].subscription.match(e) &&
        members[1].subscription.match(e))
      ++both;
  }
  // Independent: P[both] = pd^2 = 0.16 (joint overlap varies per draw; with
  // one fixed pair the joint probability equals the overlap width, which is
  // itself random — accept a generous band).
  EXPECT_LT(both / static_cast<double>(trials), pd);
}

TEST(ClusteredInterestMembers, SameLeafSharesRegion) {
  Rng rng(6);
  const auto space = AddressSpace::regular(4, 2);
  const auto members = clustered_interest_members(space, 0.2, 0.0, rng);
  // With zero jitter, all members of leaf k have identical subscriptions.
  for (std::size_t i = 0; i < members.size(); i += 4) {
    Rng ev_rng(7);
    for (int t = 0; t < 50; ++t) {
      const Event e = make_uniform_event(0, static_cast<std::uint64_t>(t),
                                         ev_rng);
      const bool first = members[i].subscription.match(e);
      for (std::size_t j = 1; j < 4; ++j)
        EXPECT_EQ(members[i + j].subscription.match(e), first);
    }
  }
}

TEST(ClusteredInterestMembers, DifferentLeavesDifferentRegions) {
  Rng rng(8);
  const auto space = AddressSpace::regular(4, 2);
  const auto members = clustered_interest_members(space, 0.2, 0.0, rng);
  // Leaf 0 covers [0, 0.2); leaf 2 covers [0.5, 0.7).
  EXPECT_TRUE(members[0].subscription.match(make_event_at(0, 0, 0.1)));
  EXPECT_FALSE(members[8].subscription.match(make_event_at(0, 0, 0.1)));
  EXPECT_TRUE(members[8].subscription.match(make_event_at(0, 0, 0.6)));
}

TEST(MakeEvent, CarriesUniformAttribute) {
  Rng rng(9);
  const Event e = make_uniform_event(3, 14, rng);
  EXPECT_EQ(e.id().publisher, 3u);
  EXPECT_EQ(e.id().sequence, 14u);
  const auto u = e.get(kUniformAttr);
  ASSERT_TRUE(u.has_value());
  EXPECT_GE(u->as_double(), 0.0);
  EXPECT_LT(u->as_double(), 1.0);
}

TEST(MakeEventAt, Deterministic) {
  const Event e = make_event_at(1, 2, 0.75);
  EXPECT_DOUBLE_EQ(e.get(kUniformAttr)->as_double(), 0.75);
}

// ---------------------------------------------------------------------------
// Zipf workload

TEST(ZipfRanks, CdfIsMonotoneAndNormalized) {
  const ZipfRanks ranks(64, 1.1);
  ASSERT_EQ(ranks.size(), 64u);
  double prev = 0.0;
  double sum = 0.0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const double p = ranks.probability(r);
    EXPECT_GT(p, 0.0);
    sum += p;
    // Zipf: probabilities are strictly decreasing with rank.
    if (r > 0) {
      EXPECT_LT(p, prev);
    }
    prev = p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfRanks, SamplingFollowsTheSkew) {
  const ZipfRanks ranks(16, 1.1);
  Rng rng(42);
  std::vector<std::size_t> counts(16, 0);
  constexpr std::size_t kDraws = 20000;
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[ranks.sample(rng)];
  // Rank 0 should dominate rank 15 by roughly 16^1.1 ≈ 21x; require a
  // loose 5x so the test never flakes on RNG noise.
  EXPECT_GT(counts[0], counts[15] * 5);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws,
              ranks.probability(0), 0.02);
}

TEST(ZipfWorkloadGen, SubscriptionsAreSeedStable) {
  ZipfWorkload a;
  a.subscriptions = 100;
  a.seed = 7;
  ZipfWorkload b = a;
  b.subscriptions = 100000;  // a much larger deployment...
  const ZipfWorkloadGen small(a), large(b);
  // ...must not re-shuffle the subscriptions the small one already had:
  // subscription i depends only on (seed, i), like stable_member.
  for (std::size_t i = 0; i < a.subscriptions; ++i) {
    EXPECT_EQ(small.subscription(i).to_string(),
              large.subscription(i).to_string())
        << "subscription " << i << " depends on the deployment size";
  }
  // Different seeds must diverge somewhere.
  ZipfWorkload c = a;
  c.seed = 8;
  const ZipfWorkloadGen other(c);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.subscriptions && !any_differ; ++i)
    any_differ = small.subscription(i).to_string() !=
                 other.subscription(i).to_string();
  EXPECT_TRUE(any_differ);
}

TEST(ZipfWorkloadGen, EventsCarryEveryAttribute) {
  ZipfWorkload w;
  w.numeric_attrs = 3;
  w.string_attrs = 2;
  w.values_per_attr = 8;
  const ZipfWorkloadGen gen(w);
  Rng rng(5);
  const Event e = gen.event(4, 9, rng);
  EXPECT_EQ(e.id().publisher, 4u);
  EXPECT_EQ(e.id().sequence, 9u);
  for (std::size_t i = 0; i < w.numeric_attrs; ++i) {
    const auto v = e.get(ZipfWorkloadGen::numeric_attr(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(v->as_double(), 0.0);
    EXPECT_LT(v->as_double(), 1.0);
  }
  for (std::size_t i = 0; i < w.string_attrs; ++i) {
    const auto v = e.get(ZipfWorkloadGen::string_attr(i));
    ASSERT_TRUE(v.has_value());
    // Value is one of the catalog's v0..v7.
    const auto& s = v->as_string();
    ASSERT_GT(s.size(), 1u);
    EXPECT_EQ(s[0], 'v');
    EXPECT_LT(std::stoul(s.substr(1)), w.values_per_attr);
  }
}

TEST(ZipfWorkloadGen, InvalidConfigRejected) {
  ZipfWorkload w;
  w.subscriptions = 0;
  EXPECT_THROW((void)ZipfWorkloadGen(w), std::logic_error);
  ZipfWorkload w2;
  w2.atoms_min = 3;
  w2.atoms_max = 2;
  EXPECT_THROW((void)ZipfWorkloadGen(w2), std::logic_error);
}

}  // namespace
}  // namespace pmc

// Golden end-to-end fingerprints: the full churn/shard stacks must produce
// byte-identical run digests across refactors of the internal memory
// layout (address interning, SoA views, summary pooling). The pinned
// values were captured from the pre-interning implementation, so any drift
// here means observable behavior changed — RNG draw order, delivery
// counts, gossip order — not just representation.
//
// Configs mirror `pmcast_sim --scenario demo [--wire|--adaptive]` and
// `pmcast_sim --shards ...` defaults (a=4, d=2, R=2, F=2, eps=0.05,
// fill=0.75, seed=42, horizon 3500 ms).
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/shard.hpp"

namespace pmc {
namespace {

ChurnConfig demo_config() {
  ChurnConfig config;
  config.a = 4;
  config.d = 2;
  config.r = 2;
  config.pd = 0.5;
  config.fanout = 2;
  config.loss = 0.05;
  config.initial_fill = 0.75;
  config.seed = 42;
  return config;
}

ChurnSummary run_demo(ChurnConfig config) {
  ChurnSim sim(config);
  sim.play(ScenarioScript::demo());
  sim.run_until(sim_ms(3500));
  return sim.summary();
}

TEST(ReproGolden, ScenarioDemo) {
  const ChurnSummary s = run_demo(demo_config());
  EXPECT_EQ(s.fingerprint, 0x0709bfc910400cbcULL) << s.to_string();
  EXPECT_EQ(s.counters.delivered, 81u);
  EXPECT_EQ(s.network.sent, 3560u);
}

TEST(ReproGolden, ScenarioDemoWireTranscodeIsTransparent) {
  // Running every message through the frozen wire codec must not change a
  // single draw or delivery: same fingerprint as the in-memory run.
  ChurnConfig config = demo_config();
  config.wire_transcode = true;
  const ChurnSummary s = run_demo(config);
  EXPECT_EQ(s.fingerprint, 0x0709bfc910400cbcULL) << s.to_string();
}

TEST(ReproGolden, ScenarioDemoAdaptive) {
  ChurnConfig config = demo_config();
  config.adaptive = true;
  config.adaptive_alpha = 0.3;
  const ChurnSummary s = run_demo(config);
  EXPECT_EQ(s.fingerprint, 0xc21c3172b50fce84ULL) << s.to_string();
  EXPECT_EQ(s.env_windows, 431u);
}

ShardedConfig sharded_config(std::size_t shards) {
  ShardedConfig config;
  config.shards = shards;
  config.shard = demo_config();
  return config;
}

/// The worker-pool engine must not just replay itself — it must replay the
/// single-runtime engine the pins were captured under, at every lane
/// count. Sharded goldens therefore run at T = 1, 2, and 8 and assert the
/// same pinned values each time.
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

TEST(ReproGolden, Shards16AnyThreadCount) {
  for (const auto threads : kThreadCounts) {
    ShardedConfig config = sharded_config(16);
    config.threads = threads;
    ShardedSim sim(config);
    sim.run_until(sim_ms(3500));
    const ShardedSummary s = sim.summary();
    EXPECT_EQ(s.fingerprint, 0x0f8b319af33eb380ULL)
        << "threads=" << threads << "\n" << s.to_string();
    EXPECT_EQ(s.aggregate.fingerprint, 0x50a6bd223289b406ULL);
    ASSERT_EQ(s.shards.size(), 16u);
    EXPECT_EQ(s.shards[0].fingerprint, 0x688f9f4ddc880d45ULL);
  }
}

TEST(ReproGolden, WanFlapScenarioAnyThreadCount) {
  // Adversarial pin: a WAN latency profile plus a flapping partition on
  // shard 0. The injector draws ride labeled sub-streams of the
  // per-message seed, so the fingerprint must not move with the thread
  // count — and any change to how those streams are derived moves it.
  for (const auto threads : kThreadCounts) {
    ShardedConfig config = sharded_config(4);
    config.threads = threads;
    ShardedSim sim(config);
    sim.play(0, ScenarioScript::parse(
                    "at 100ms latency lognormal 2ms 0.8\n"
                    "at 200ms flap 0 period 200ms duty 0.3 until 1500ms\n"
                    "at 2s publish 6 every 50ms\n"));
    sim.run_until(sim_ms(3500));
    const ShardedSummary s = sim.summary();
    EXPECT_EQ(s.fingerprint, 0x0f34ef7a70b65007ULL)
        << "threads=" << threads << "\n" << s.to_string();
    EXPECT_EQ(s.aggregate.fingerprint, 0xba8c26674d1c9b2cULL);
    ASSERT_EQ(s.shards.size(), 4u);
    EXPECT_EQ(s.shards[0].fingerprint, 0x4d0f251324264df4ULL);
  }
}

TEST(ReproGolden, Shards4Cross2AnyThreadCount) {
  for (const auto threads : kThreadCounts) {
    ShardedConfig config = sharded_config(4);
    config.cross.publishers = 2;
    config.cross.span = 2;
    config.cross.events = 8;
    config.cross.spacing = sim_ms(100);
    config.threads = threads;
    ShardedSim sim(config);
    sim.run_until(sim_ms(3500));
    const ShardedSummary s = sim.summary();
    EXPECT_EQ(s.fingerprint, 0x0156089b3f3e12f6ULL)
        << "threads=" << threads << "\n" << s.to_string();
    EXPECT_EQ(s.aggregate.fingerprint, 0xadc2bec9eed60c1dULL);
    ASSERT_EQ(s.shards.size(), 4u);
    EXPECT_EQ(s.shards[0].fingerprint, 0x493af6e591c12ab5ULL);
    EXPECT_EQ(s.shards[1].fingerprint, 0x95dab52657582cdaULL);
  }
}

TEST(ReproGolden, Shards8PartitionedShardAnyThreadCount) {
  // A partition scoped to one shard (install + heal both inside the run)
  // must unfold identically under every lane count; the fingerprint was
  // captured at threads=1 on the engine that passes the pins above.
  ShardedSummary reference;
  for (const auto threads : kThreadCounts) {
    ShardedConfig config = sharded_config(8);
    config.threads = threads;
    ShardedSim sim(config);
    ScenarioScript script;
    script.add(sim_ms(400), Partition{{0, 1}, sim_ms(1600)});
    script.add(sim_ms(800), CrashNodes{2});
    sim.play(3, script);
    sim.run_until(sim_ms(3500));
    const ShardedSummary s = sim.summary();
    EXPECT_EQ(s.fingerprint, 0x9bb4edacdf0f0d73ULL)
        << "threads=" << threads << "\n" << s.to_string();
    if (threads == 1) {
      reference = s;
    } else {
      EXPECT_EQ(s, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace pmc

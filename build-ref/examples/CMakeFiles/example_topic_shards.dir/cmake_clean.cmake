file(REMOVE_RECURSE
  "CMakeFiles/example_topic_shards.dir/topic_shards.cpp.o"
  "CMakeFiles/example_topic_shards.dir/topic_shards.cpp.o.d"
  "example_topic_shards"
  "example_topic_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_topic_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

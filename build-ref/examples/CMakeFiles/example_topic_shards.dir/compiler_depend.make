# Empty compiler generated dependencies file for example_topic_shards.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_full_stack.
# This may be replaced when dependencies are built.

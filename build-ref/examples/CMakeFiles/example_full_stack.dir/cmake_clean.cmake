file(REMOVE_RECURSE
  "CMakeFiles/example_full_stack.dir/full_stack.cpp.o"
  "CMakeFiles/example_full_stack.dir/full_stack.cpp.o.d"
  "example_full_stack"
  "example_full_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_full_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

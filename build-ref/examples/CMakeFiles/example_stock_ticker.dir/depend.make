# Empty dependencies file for example_stock_ticker.
# This may be replaced when dependencies are built.

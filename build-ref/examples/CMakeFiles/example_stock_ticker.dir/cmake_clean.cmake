file(REMOVE_RECURSE
  "CMakeFiles/example_stock_ticker.dir/stock_ticker.cpp.o"
  "CMakeFiles/example_stock_ticker.dir/stock_ticker.cpp.o.d"
  "example_stock_ticker"
  "example_stock_ticker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stock_ticker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

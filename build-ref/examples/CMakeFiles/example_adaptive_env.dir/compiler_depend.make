# Empty compiler generated dependencies file for example_adaptive_env.
# This may be replaced when dependencies are built.

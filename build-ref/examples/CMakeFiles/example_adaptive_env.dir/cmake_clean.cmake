file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_env.dir/adaptive_env.cpp.o"
  "CMakeFiles/example_adaptive_env.dir/adaptive_env.cpp.o.d"
  "example_adaptive_env"
  "example_adaptive_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

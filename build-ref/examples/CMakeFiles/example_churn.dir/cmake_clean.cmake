file(REMOVE_RECURSE
  "CMakeFiles/example_churn.dir/churn.cpp.o"
  "CMakeFiles/example_churn.dir/churn.cpp.o.d"
  "example_churn"
  "example_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_churn.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_sensor_grid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_sensor_grid.dir/sensor_grid.cpp.o"
  "CMakeFiles/example_sensor_grid.dir/sensor_grid.cpp.o.d"
  "example_sensor_grid"
  "example_sensor_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sensor_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-ref/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_churn_smoke]=] "/root/repo/build-ref/examples/example_churn")
set_tests_properties([=[example_churn_smoke]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_topic_shards_smoke]=] "/root/repo/build-ref/examples/example_topic_shards")
set_tests_properties([=[example_topic_shards_smoke]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_adaptive_env_smoke]=] "/root/repo/build-ref/examples/example_adaptive_env")
set_tests_properties([=[example_adaptive_env_smoke]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")

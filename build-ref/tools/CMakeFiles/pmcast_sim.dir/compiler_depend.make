# Empty compiler generated dependencies file for pmcast_sim.
# This may be replaced when dependencies are built.

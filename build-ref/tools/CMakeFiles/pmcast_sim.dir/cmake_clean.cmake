file(REMOVE_RECURSE
  "CMakeFiles/pmcast_sim.dir/pmcast_sim.cpp.o"
  "CMakeFiles/pmcast_sim.dir/pmcast_sim.cpp.o.d"
  "pmcast_sim"
  "pmcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-ref/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[pmcast_sim_help]=] "/root/repo/build-ref/tools/pmcast_sim" "--help" "--runs" "5")
set_tests_properties([=[pmcast_sim_help]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[pmcast_sim_help_audit]=] "/root/repo/build-ref/tools/pmcast_sim" "--help")
set_tests_properties([=[pmcast_sim_help_audit]=] PROPERTIES  PASS_REGULAR_EXPRESSION "--adaptive\\[=A\\]" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[pmcast_sim_shards_repro]=] "/root/repo/build-ref/tools/pmcast_sim" "--shards" "4" "--shard-scenario" "demo" "--horizon" "1500ms" "--repro-check")
set_tests_properties([=[pmcast_sim_shards_repro]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[pmcast_sim_adaptive_repro]=] "/root/repo/build-ref/tools/pmcast_sim" "--scenario" "demo" "--adaptive" "--horizon" "2500ms" "--repro-check")
set_tests_properties([=[pmcast_sim_adaptive_repro]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[docs_link_check]=] "/root/.pyenv/shims/python3" "/root/repo/tools/check_links.py" "/root/repo")
set_tests_properties([=[docs_link_check]=] PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")

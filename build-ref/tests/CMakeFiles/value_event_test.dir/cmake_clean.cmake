file(REMOVE_RECURSE
  "CMakeFiles/value_event_test.dir/value_event_test.cpp.o"
  "CMakeFiles/value_event_test.dir/value_event_test.cpp.o.d"
  "value_event_test"
  "value_event_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

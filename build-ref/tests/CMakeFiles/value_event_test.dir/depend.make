# Empty dependencies file for value_event_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tree_analysis_test.dir/tree_analysis_test.cpp.o"
  "CMakeFiles/tree_analysis_test.dir/tree_analysis_test.cpp.o.d"
  "tree_analysis_test"
  "tree_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/regroup_test.dir/regroup_test.cpp.o"
  "CMakeFiles/regroup_test.dir/regroup_test.cpp.o.d"
  "regroup_test"
  "regroup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for regroup_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/env_estimator_test.dir/env_estimator_test.cpp.o"
  "CMakeFiles/env_estimator_test.dir/env_estimator_test.cpp.o.d"
  "env_estimator_test"
  "env_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for env_estimator_test.
# This may be replaced when dependencies are built.

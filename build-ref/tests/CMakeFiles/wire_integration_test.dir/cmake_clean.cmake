file(REMOVE_RECURSE
  "CMakeFiles/wire_integration_test.dir/wire_integration_test.cpp.o"
  "CMakeFiles/wire_integration_test.dir/wire_integration_test.cpp.o.d"
  "wire_integration_test"
  "wire_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wire_integration_test.
# This may be replaced when dependencies are built.

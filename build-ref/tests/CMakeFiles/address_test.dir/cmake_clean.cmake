file(REMOVE_RECURSE
  "CMakeFiles/address_test.dir/address_test.cpp.o"
  "CMakeFiles/address_test.dir/address_test.cpp.o.d"
  "address_test"
  "address_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/treecast_test.dir/treecast_test.cpp.o"
  "CMakeFiles/treecast_test.dir/treecast_test.cpp.o.d"
  "treecast_test"
  "treecast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treecast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

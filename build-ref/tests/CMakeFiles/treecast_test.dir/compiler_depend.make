# Empty compiler generated dependencies file for treecast_test.
# This may be replaced when dependencies are built.

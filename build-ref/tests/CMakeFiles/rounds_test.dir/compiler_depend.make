# Empty compiler generated dependencies file for rounds_test.
# This may be replaced when dependencies are built.

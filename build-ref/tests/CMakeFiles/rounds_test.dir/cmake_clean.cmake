file(REMOVE_RECURSE
  "CMakeFiles/rounds_test.dir/rounds_test.cpp.o"
  "CMakeFiles/rounds_test.dir/rounds_test.cpp.o.d"
  "rounds_test"
  "rounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pmcast_node_test.dir/pmcast_node_test.cpp.o"
  "CMakeFiles/pmcast_node_test.dir/pmcast_node_test.cpp.o.d"
  "pmcast_node_test"
  "pmcast_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmcast_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pmcast_node_test.
# This may be replaced when dependencies are built.

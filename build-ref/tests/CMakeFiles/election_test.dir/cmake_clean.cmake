file(REMOVE_RECURSE
  "CMakeFiles/election_test.dir/election_test.cpp.o"
  "CMakeFiles/election_test.dir/election_test.cpp.o.d"
  "election_test"
  "election_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for election_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/netmap_test.dir/netmap_test.cpp.o"
  "CMakeFiles/netmap_test.dir/netmap_test.cpp.o.d"
  "netmap_test"
  "netmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for netmap_test.
# This may be replaced when dependencies are built.

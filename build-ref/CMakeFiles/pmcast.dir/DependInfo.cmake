
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/addr/address.cpp" "CMakeFiles/pmcast.dir/src/addr/address.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/addr/address.cpp.o.d"
  "/root/repo/src/addr/netmap.cpp" "CMakeFiles/pmcast.dir/src/addr/netmap.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/addr/netmap.cpp.o.d"
  "/root/repo/src/addr/space.cpp" "CMakeFiles/pmcast.dir/src/addr/space.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/addr/space.cpp.o.d"
  "/root/repo/src/analysis/env_estimator.cpp" "CMakeFiles/pmcast.dir/src/analysis/env_estimator.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/analysis/env_estimator.cpp.o.d"
  "/root/repo/src/analysis/markov.cpp" "CMakeFiles/pmcast.dir/src/analysis/markov.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/analysis/markov.cpp.o.d"
  "/root/repo/src/analysis/rounds.cpp" "CMakeFiles/pmcast.dir/src/analysis/rounds.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/analysis/rounds.cpp.o.d"
  "/root/repo/src/analysis/tree_analysis.cpp" "CMakeFiles/pmcast.dir/src/analysis/tree_analysis.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/analysis/tree_analysis.cpp.o.d"
  "/root/repo/src/baselines/flooding.cpp" "CMakeFiles/pmcast.dir/src/baselines/flooding.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/baselines/flooding.cpp.o.d"
  "/root/repo/src/baselines/genuine.cpp" "CMakeFiles/pmcast.dir/src/baselines/genuine.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/baselines/genuine.cpp.o.d"
  "/root/repo/src/baselines/treecast.cpp" "CMakeFiles/pmcast.dir/src/baselines/treecast.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/baselines/treecast.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/pmcast.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/pmcast.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/event/event.cpp" "CMakeFiles/pmcast.dir/src/event/event.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/event/event.cpp.o.d"
  "/root/repo/src/event/value.cpp" "CMakeFiles/pmcast.dir/src/event/value.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/event/value.cpp.o.d"
  "/root/repo/src/filter/interval.cpp" "CMakeFiles/pmcast.dir/src/filter/interval.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/filter/interval.cpp.o.d"
  "/root/repo/src/filter/parser.cpp" "CMakeFiles/pmcast.dir/src/filter/parser.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/filter/parser.cpp.o.d"
  "/root/repo/src/filter/predicate.cpp" "CMakeFiles/pmcast.dir/src/filter/predicate.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/filter/predicate.cpp.o.d"
  "/root/repo/src/filter/regroup.cpp" "CMakeFiles/pmcast.dir/src/filter/regroup.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/filter/regroup.cpp.o.d"
  "/root/repo/src/filter/subscription.cpp" "CMakeFiles/pmcast.dir/src/filter/subscription.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/filter/subscription.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "CMakeFiles/pmcast.dir/src/harness/experiment.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/scenario.cpp" "CMakeFiles/pmcast.dir/src/harness/scenario.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/harness/scenario.cpp.o.d"
  "/root/repo/src/harness/shard.cpp" "CMakeFiles/pmcast.dir/src/harness/shard.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/harness/shard.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "CMakeFiles/pmcast.dir/src/harness/table.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/harness/table.cpp.o.d"
  "/root/repo/src/harness/workload.cpp" "CMakeFiles/pmcast.dir/src/harness/workload.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/harness/workload.cpp.o.d"
  "/root/repo/src/membership/election.cpp" "CMakeFiles/pmcast.dir/src/membership/election.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/membership/election.cpp.o.d"
  "/root/repo/src/membership/sync.cpp" "CMakeFiles/pmcast.dir/src/membership/sync.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/membership/sync.cpp.o.d"
  "/root/repo/src/membership/tree.cpp" "CMakeFiles/pmcast.dir/src/membership/tree.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/membership/tree.cpp.o.d"
  "/root/repo/src/membership/view.cpp" "CMakeFiles/pmcast.dir/src/membership/view.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/membership/view.cpp.o.d"
  "/root/repo/src/pmcast/node.cpp" "CMakeFiles/pmcast.dir/src/pmcast/node.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/pmcast/node.cpp.o.d"
  "/root/repo/src/pmcast/view_provider.cpp" "CMakeFiles/pmcast.dir/src/pmcast/view_provider.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/pmcast/view_provider.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/pmcast.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/sim/reference_scheduler.cpp" "CMakeFiles/pmcast.dir/src/sim/reference_scheduler.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/sim/reference_scheduler.cpp.o.d"
  "/root/repo/src/sim/runtime.cpp" "CMakeFiles/pmcast.dir/src/sim/runtime.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/sim/runtime.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "CMakeFiles/pmcast.dir/src/sim/scheduler.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/sim/scheduler.cpp.o.d"
  "/root/repo/src/wire/codec.cpp" "CMakeFiles/pmcast.dir/src/wire/codec.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/wire/codec.cpp.o.d"
  "/root/repo/src/wire/messages.cpp" "CMakeFiles/pmcast.dir/src/wire/messages.cpp.o" "gcc" "CMakeFiles/pmcast.dir/src/wire/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for pmcast.
# This may be replaced when dependencies are built.

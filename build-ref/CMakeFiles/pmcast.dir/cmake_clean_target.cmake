file(REMOVE_RECURSE
  "libpmcast.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fig_infection_curve.dir/fig_infection_curve.cpp.o"
  "CMakeFiles/fig_infection_curve.dir/fig_infection_curve.cpp.o.d"
  "fig_infection_curve"
  "fig_infection_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_infection_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig_infection_curve.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig5_uninterested.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_uninterested.dir/fig5_uninterested.cpp.o"
  "CMakeFiles/fig5_uninterested.dir/fig5_uninterested.cpp.o.d"
  "fig5_uninterested"
  "fig5_uninterested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_uninterested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table_view_sizes.dir/table_view_sizes.cpp.o"
  "CMakeFiles/table_view_sizes.dir/table_view_sizes.cpp.o.d"
  "table_view_sizes"
  "table_view_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_view_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

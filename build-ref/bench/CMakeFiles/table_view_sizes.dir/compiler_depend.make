# Empty compiler generated dependencies file for table_view_sizes.
# This may be replaced when dependencies are built.

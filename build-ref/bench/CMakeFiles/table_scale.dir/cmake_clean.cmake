file(REMOVE_RECURSE
  "CMakeFiles/table_scale.dir/table_scale.cpp.o"
  "CMakeFiles/table_scale.dir/table_scale.cpp.o.d"
  "table_scale"
  "table_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

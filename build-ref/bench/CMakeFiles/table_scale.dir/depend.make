# Empty dependencies file for table_scale.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig7_tuning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_tuning.dir/fig7_tuning.cpp.o"
  "CMakeFiles/fig7_tuning.dir/fig7_tuning.cpp.o.d"
  "fig7_tuning"
  "fig7_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table_adaptive.
# This may be replaced when dependencies are built.

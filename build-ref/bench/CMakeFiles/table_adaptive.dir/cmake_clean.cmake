file(REMOVE_RECURSE
  "CMakeFiles/table_adaptive.dir/table_adaptive.cpp.o"
  "CMakeFiles/table_adaptive.dir/table_adaptive.cpp.o.d"
  "table_adaptive"
  "table_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

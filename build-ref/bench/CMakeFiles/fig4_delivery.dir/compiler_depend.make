# Empty compiler generated dependencies file for fig4_delivery.
# This may be replaced when dependencies are built.

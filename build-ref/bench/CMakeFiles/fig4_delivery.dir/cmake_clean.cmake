file(REMOVE_RECURSE
  "CMakeFiles/fig4_delivery.dir/fig4_delivery.cpp.o"
  "CMakeFiles/fig4_delivery.dir/fig4_delivery.cpp.o.d"
  "fig4_delivery"
  "fig4_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

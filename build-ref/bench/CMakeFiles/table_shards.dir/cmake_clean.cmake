file(REMOVE_RECURSE
  "CMakeFiles/table_shards.dir/table_shards.cpp.o"
  "CMakeFiles/table_shards.dir/table_shards.cpp.o.d"
  "table_shards"
  "table_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

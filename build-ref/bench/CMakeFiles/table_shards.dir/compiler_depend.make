# Empty compiler generated dependencies file for table_shards.
# This may be replaced when dependencies are built.

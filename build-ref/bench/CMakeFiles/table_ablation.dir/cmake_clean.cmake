file(REMOVE_RECURSE
  "CMakeFiles/table_ablation.dir/table_ablation.cpp.o"
  "CMakeFiles/table_ablation.dir/table_ablation.cpp.o.d"
  "table_ablation"
  "table_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table_rounds.dir/table_rounds.cpp.o"
  "CMakeFiles/table_rounds.dir/table_rounds.cpp.o.d"
  "table_rounds"
  "table_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

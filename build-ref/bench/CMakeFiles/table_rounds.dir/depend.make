# Empty dependencies file for table_rounds.
# This may be replaced when dependencies are built.

# Empty dependencies file for table_churn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table_churn.dir/table_churn.cpp.o"
  "CMakeFiles/table_churn.dir/table_churn.cpp.o.d"
  "table_churn"
  "table_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

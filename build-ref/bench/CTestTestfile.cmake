# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-ref/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[table_adaptive_smoke]=] "/root/repo/build-ref/bench/table_adaptive")
set_tests_properties([=[table_adaptive_smoke]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;19;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[table_scale_smoke]=] "/root/repo/build-ref/bench/table_scale" "--max-processes" "1100" "--json" "table_scale_smoke.json")
set_tests_properties([=[table_scale_smoke]=] PROPERTIES  FIXTURES_SETUP "bench_json" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_json_check]=] "/root/.pyenv/shims/python3" "/root/repo/tools/check_bench_json.py" "/root/repo/build-ref/bench/table_scale_smoke.json")
set_tests_properties([=[bench_json_check]=] PROPERTIES  FIXTURES_REQUIRED "bench_json" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")

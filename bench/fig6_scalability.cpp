// FIG6 — paper Figure 6: "Scalability".
// Probability of delivery vs subgroup size a, for a tree of fixed depth
// d = 3 with R = 4 and F = 3 (figure caption), at matching rates 0.5 and
// 0.2. The group size grows as a^3: a = 10 -> 1000 processes,
// a = 40 -> 64000 processes.
//
// Expected shape (paper): reliability stays high (> 0.9) and roughly flat /
// improving as a grows; the 0.2 curve sits below the 0.5 curve because the
// smaller audience is less well served by Pittel's estimate.
#include "bench_common.hpp"

#include "analysis/tree_analysis.hpp"
#include "scenario_rows.hpp"

int main(int argc, char** argv) {
  using namespace pmc;
  bench::JsonWriter json(argc, argv, "fig6_scalability");
  const bool scenarios_only = bench::scenarios_only(argc, argv);
  const std::size_t runs = bench::runs_per_point(8);
  bench::print_header(
      "FIG6", "Scalability: delivery probability vs subgroup size a",
      "d=3, R=4, F=3, eps=0.05, matching rates {0.5, 0.2}, runs/point=" +
          std::to_string(runs));

  if (!scenarios_only) {
    Table table({"a", "n", "sim(pd=0.5)", "analysis(0.5)", "sim(pd=0.2)",
                 "analysis(0.2)"});
    std::vector<std::vector<std::string>> dump;
    for (const std::size_t a : {10u, 15u, 20u, 25u, 30u, 35u, 40u}) {
      std::vector<std::string> row{
          Table::integer(a), Table::integer(a * a * a)};
      std::vector<std::string> jrow = row;
      for (const double pd : {0.5, 0.2}) {
        ExperimentConfig config;
        config.a = a;
        config.d = 3;
        config.r = 4;
        config.fanout = 3;
        config.pd = pd;
        config.loss = 0.05;
        config.runs = runs;
        config.seed = 44;
        const auto sim = run_pmcast_experiment(config);
        const auto analysis = analyze_tree(config.analysis_params());
        row.push_back(bench::pm(sim.delivery, 3));
        row.push_back(Table::num(analysis.reliability, 3));
        jrow.push_back(Table::num(sim.delivery.mean(), 3));
        jrow.push_back(Table::num(analysis.reliability, 3));
      }
      table.add_row(std::move(row));
      dump.push_back(std::move(jrow));
    }
    table.print(std::cout);
    json.add_table("delivery_vs_a",
                   {"a", "n", "sim_pd05", "analysis_pd05", "sim_pd02",
                    "analysis_pd02"},
                   dump);
    std::cout << "\nShape check: both curves high and stable in a; the 0.2"
                 " curve below the 0.5 curve.\n";
  }

  // Adversarial rows at two group scales: the scalability axis of the
  // fault-injection suite (see scenario_rows.hpp). One deterministic run
  // per (scenario, a).
  std::cout << "\nAdversarial scenarios at a in {4, 6} (d=3, deterministic"
               " single runs, publish burst at 3s):\n";
  Table adv(bench::scenario_headers());
  std::vector<std::vector<std::string>> adv_dump;
  for (const std::size_t a : {std::size_t{4}, std::size_t{6}}) {
    for (const auto& spec : bench::adversarial_scenarios()) {
      const auto summary = bench::run_adversarial_scenario(spec, a, 3, 44);
      auto row = bench::scenario_row(spec, summary.live, summary);
      adv.add_row(row);
      adv_dump.push_back(std::move(row));
    }
  }
  adv.print(std::cout);
  json.add_table("scenarios", bench::scenario_headers(), adv_dump);
  json.write();
  return 0;
}

// TAB-ABLATION — ablations of the design choices DESIGN.md §6 calls out.
// No single table in the paper corresponds to this; it quantifies the
// knobs the paper discusses qualitatively:
//   A. local-interest shortcut (Sec. 3.2 note) — message savings for
//      locality-clustered interests;
//   B. Pittel constant c (Eq. 3) — reliability vs extra rounds;
//   C. redundancy R under crashes — delegate redundancy buys reliability;
//   D. leaf flooding at dense interest (Sec. 6) — messages vs gossip;
//   E. root filter coarsening (Sec. 6) — false reception cost.
#include "bench_common.hpp"

#include "pmcast/node.hpp"

int main(int argc, char** argv) {
  using namespace pmc;
  bench::JsonWriter json(argc, argv, "table_ablation");
  const std::size_t runs = bench::runs_per_point(10);
  bench::print_header("TAB-ABLATION", "Design-choice ablations",
                      "base: a=10, d=3 (n=1000), R=3, F=3, eps=0.05, "
                      "runs/point=" + std::to_string(runs));

  const auto base = [&] {
    ExperimentConfig c;
    c.a = 10;
    c.d = 3;
    c.r = 3;
    c.fanout = 3;
    c.pd = 0.5;
    c.loss = 0.05;
    c.runs = runs;
    c.seed = 101;
    return c;
  };

  {
    // The shortcut matters when the publisher's own subtree is the only
    // interested one, so this ablation publishes *from inside* the
    // interested cluster (run_pmcast_experiment randomizes the publisher,
    // which would almost never hit that case).
    std::cout << "\n[A] Local-interest shortcut (publisher inside the only"
                 " interested cluster):\n";
    Table t({"shortcut", "delivered", "messages"});
    for (const bool on : {true, false}) {
      Rng rng(7);
      const auto space = AddressSpace::regular(6, 2);
      const auto members =
          clustered_interest_members(space, 0.15, 0.0, rng);
      TreeConfig tc;
      tc.depth = 2;
      tc.redundancy = 3;
      Interns interns;
      const GroupTree tree(tc, members, interns);
      const TreeViewProvider views(tree);
      std::uint64_t messages = 0;
      std::size_t delivered = 0;
      for (std::uint64_t seed = 0; seed < runs; ++seed) {
        Runtime rt(NetworkConfig{}, 55 + seed);
        std::vector<ProcessId> dir;
        for (std::size_t i = 0; i < members.size(); ++i) {
          const AddrId id = interns.addrs.intern(members[i].address);
          if (dir.size() <= id) dir.resize(id + 1, kNoProcess);
          dir[id] = static_cast<ProcessId>(i);
        }
        PmcastConfig pc;
        pc.tree = tc;
        pc.fanout = 3;
        pc.local_interest_shortcut = on;
        std::vector<std::unique_ptr<PmcastNode>> nodes;
        for (std::size_t i = 0; i < members.size(); ++i)
          nodes.push_back(std::make_unique<PmcastNode>(
              rt, static_cast<ProcessId>(i), pc, members[i].address,
              members[i].subscription, views, [&dir](AddrId id) {
                return id < dir.size() ? dir[id] : kNoProcess;
              }));
        // Cluster 0 subscribes around u = 0.05; publish from inside it.
        nodes[0]->pmcast(make_event_at(0, seed, 0.05));
        rt.run_until_idle();
        messages += rt.network().counters().sent;
        for (const auto& n : nodes)
          if (n->has_delivered(EventId{0, seed})) ++delivered;
      }
      t.add_row({on ? "on" : "off", Table::integer(delivered),
                 Table::integer(messages)});
    }
    t.print(std::cout);
    json.add_table("A. local-interest shortcut", t.headers(), t.rows());
  }

  {
    std::cout << "\n[B] Pittel constant c (pd=0.05 — small audience):\n";
    Table t({"c", "delivery", "rounds", "msgs/process"});
    for (const double c_val : {0.0, 1.0, 2.0, 4.0}) {
      auto c = base();
      c.pd = 0.05;
      c.pittel_c = c_val;
      const auto r = run_pmcast_experiment(c);
      t.add_row({Table::num(c_val, 1), bench::pm(r.delivery, 3),
                 Table::num(r.rounds.mean(), 1),
                 Table::num(r.messages_per_process.mean(), 2)});
    }
    t.print(std::cout);
    json.add_table("B. pittel constant", t.headers(), t.rows());
  }

  {
    std::cout << "\n[C] Redundancy R under 10% crashes:\n";
    Table t({"R", "delivery", "view size m"});
    for (const std::size_t r_val : {1u, 2u, 3u, 4u}) {
      auto c = base();
      c.r = r_val;
      c.crash_fraction = 0.10;
      const auto r = run_pmcast_experiment(c);
      t.add_row({Table::integer(r_val), bench::pm(r.delivery, 3),
                 Table::integer(r_val * 10 * 2 + 10)});
    }
    t.print(std::cout);
    json.add_table("C. redundancy under crashes", t.headers(), t.rows());
  }

  {
    std::cout << "\n[D] Leaf flooding at dense interest (pd=0.95):\n";
    Table t({"flood", "delivery", "msgs/process", "rounds"});
    for (const bool on : {false, true}) {
      auto c = base();
      c.pd = 0.95;
      c.leaf_flood_density = on ? 0.9 : 2.0;
      const auto r = run_pmcast_experiment(c);
      t.add_row({on ? "on" : "off", bench::pm(r.delivery, 3),
                 Table::num(r.messages_per_process.mean(), 2),
                 Table::num(r.rounds.mean(), 1)});
    }
    t.print(std::cout);
    json.add_table("D. leaf flooding", t.headers(), t.rows());
  }

  {
    // At pd = 0.04 the depth-2 interval unions have gaps that coarsening
    // bridges (depth-1 unions are near-total either way), so rows at
    // depths <= 2 coarsened shows the precision cost.
    std::cout << "\n[E] Root filter coarsening (pd=0.04):\n";
    Table t({"coarsen", "delivery", "false-reception"});
    for (const bool on : {false, true}) {
      auto c = base();
      c.pd = 0.04;
      c.tuning_threshold = 5;  // keep small-audience delivery comparable
      c.coarsen_depth_leq = on ? 2 : 0;
      const auto r = run_pmcast_experiment(c);
      t.add_row({on ? "<=2" : "off", bench::pm(r.delivery, 3),
                 bench::pm(r.false_reception, 3)});
    }
    t.print(std::cout);
    json.add_table("E. root filter coarsening", t.headers(), t.rows());
  }

  {
    std::cout << "\n[F] Digest recovery under 30% loss (pd=0.5):\n";
    Table t({"recovery", "delivery", "msgs/process"});
    for (const std::size_t rounds : {0u, 3u, 6u}) {
      auto c = base();
      c.loss = 0.30;
      c.recovery_rounds = rounds;
      const auto r = run_pmcast_experiment(c);
      t.add_row({rounds == 0 ? "off" : std::to_string(rounds) + " rounds",
                 bench::pm(r.delivery, 3),
                 Table::num(r.messages_per_process.mean(), 2)});
    }
    t.print(std::cout);
    json.add_table("F. digest recovery", t.headers(), t.rows());
  }

  std::cout << "\nShape check: [A] fewer messages with the shortcut;"
               " [B] delivery grows with c at extra message cost;"
               " [C] delivery grows with R under crashes;"
               " [D] flooding cuts messages and rounds at dense interest;"
               " [E] coarsening keeps delivery, may raise false"
               " reception; [F] digest recovery repairs loss-induced"
               " misses at extra message cost.\n";
  json.write();
  return 0;
}

// table_filter — predicate index vs naive scan on the audience axis.
//
// For N Zipf-distributed subscriptions (10^4 / 10^5 / 10^6) the same event
// stream is matched through both sides of the SubscriptionMatcher seam:
// NaiveScan (Predicate::match per subscription — the oracle) and IndexLanes
// (the counting PredicateIndex). The bench hard-fails unless both sides
// return identical id sets on every event, and reports wall-clock alongside
// the machine-independent work counters the CI gate consumes:
// `naive evals` (N x events) vs `index work` (IndexCounters::work()).
//
//   --max-subs K       cap the subscription axis (smoke runs)
//   --json FILE        mirror the table as pmcast-bench-v1 JSON
//   PMCAST_FILTER_MAX  environment cap, same effect as --max-subs
//
// tools/check_bench_json.py --gate-filter requires, on the committed
// BENCH_filter.json, naive evals / index work >= 10 at the 10^6 row and
// matched-count equality on every row.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "filter/index.hpp"
#include "harness/workload.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmc;

  std::size_t max_subs = env_size_t("PMCAST_FILTER_MAX", 1'000'000);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-subs") == 0 && i + 1 < argc)
      max_subs = static_cast<std::size_t>(std::stoull(argv[++i]));
    else if (std::strcmp(argv[i], "--json") == 0)
      ++i;  // handled by JsonWriter
  }

  bench::JsonWriter json(argc, argv, "table_filter");
  bench::print_header("table_filter",
                      "predicate index vs naive scan (Zipf subscriptions)",
                      "max subs " + std::to_string(max_subs));

  Table table({"subs", "events", "build index ms", "naive ms", "index ms",
               "speedup", "naive evals", "index work", "work ratio",
               "matched naive", "matched index", "scan subs"});

  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000},
                              std::size_t{1'000'000}}) {
    if (n > max_subs) continue;

    ZipfWorkload w;
    w.subscriptions = n;
    w.seed = 0x20f117e5 + n;
    const ZipfWorkloadGen gen(w);

    SubscriptionMatcher naive(MatcherKind::NaiveScan);
    SubscriptionMatcher index(MatcherKind::IndexLanes);
    const auto t_build_naive = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      const auto sub = gen.subscription(i);
      naive.add(static_cast<SubscriptionId>(i), sub);
    }
    (void)t_build_naive;
    const auto t_build_index = Clock::now();
    for (std::size_t i = 0; i < n; ++i)
      index.add(static_cast<SubscriptionId>(i), gen.subscription(i));
    const double build_index_ms = ms_since(t_build_index);

    // Enough events that the slow (naive, 10^6) row stays in seconds while
    // the small rows keep decent statistics.
    const std::size_t events = std::max<std::size_t>(16, 4'000'000 / n);
    Rng event_rng(fnv1a_u64(kFnv1aBasis ^ w.seed, 0xE7E57ULL));
    std::vector<Event> stream;
    stream.reserve(events);
    for (std::size_t e = 0; e < events; ++e)
      stream.push_back(gen.event(1, e, event_rng));

    // One untimed warm-up match: the index builds its interval trees and
    // sorts its lanes lazily on first use, and that one-time cost belongs
    // with the build column's story, not in the per-event match numbers.
    {
      std::vector<SubscriptionId> warm;
      naive.match(stream[0], warm);
      index.match(stream[0], warm);
    }
    const std::uint64_t naive_work0 = naive.work_units();
    const std::uint64_t index_work0 = index.work_units();

    std::vector<std::vector<SubscriptionId>> expected(events);
    const auto t_naive = Clock::now();
    for (std::size_t e = 0; e < events; ++e)
      naive.match(stream[e], expected[e]);
    const double naive_ms = ms_since(t_naive);

    std::vector<SubscriptionId> got;
    std::uint64_t matched_naive = 0, matched_index = 0;
    const auto t_index = Clock::now();
    for (std::size_t e = 0; e < events; ++e) {
      index.match(stream[e], got);
      if (got != expected[e]) {
        std::cerr << "FAIL: index diverged from naive oracle at subs=" << n
                  << " event=" << e << " (" << got.size() << " vs "
                  << expected[e].size() << " matches)\n";
        return 1;
      }
      matched_index += got.size();
    }
    const double index_ms = ms_since(t_index);
    for (const auto& ids : expected) matched_naive += ids.size();

    const std::uint64_t naive_units = naive.work_units() - naive_work0;
    const std::uint64_t index_units = index.work_units() - index_work0;
    const auto naive_evals = static_cast<double>(naive_units);
    const auto index_work = static_cast<double>(index_units);
    table.add_row({Table::integer(n), Table::integer(events),
                   Table::num(build_index_ms, 1), Table::num(naive_ms, 1),
                   Table::num(index_ms, 1),
                   Table::num(naive_ms / std::max(index_ms, 1e-9), 1),
                   Table::integer(naive_units),
                   Table::integer(index_units),
                   Table::num(naive_evals / std::max(index_work, 1.0), 1),
                   Table::integer(matched_naive),
                   Table::integer(matched_index),
                   Table::integer(index.index()->scan_bucket_size())});
  }

  table.print(std::cout);
  std::cout << "\n[oracle] index == naive scan on every row\n"
            << "peak RSS " << Table::num(bench::peak_rss_mb(), 1) << " MB\n";

  json.add_table("index vs naive scan", table.headers(), table.rows());
  json.write();
  return 0;
}

// FIG4 — paper Figure 4: "Infected Interested Processes".
// Probability that an interested process delivers a multicast event, as a
// function of the fraction of interested processes p_d.
// Configuration from the figure caption: n ≈ 10000 (a = 22), d = 3, R = 3,
// F = 2. We print the simulated probability (with 95% CIs) next to the
// Sec. 4 analysis prediction.
//
// Expected shape (paper): ≈ 1 for p_d ≳ 0.3, degrading towards small p_d
// because Pittel's asymptote under-estimates rounds for tiny audiences
// (Sec. 5.1).
#include "bench_common.hpp"

#include "analysis/tree_analysis.hpp"

int main() {
  using namespace pmc;
  const std::size_t runs = bench::runs_per_point(15);
  bench::print_header(
      "FIG4", "Probability of delivery for interested processes vs p_d",
      "n=10648 (a=22, d=3), R=3, F=2, eps=0.05, runs/point=" +
          std::to_string(runs));

  Table table({"p_d", "delivery(sim)", "delivery(analysis)", "rounds(sim)"});
  for (const double pd : {0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6,
                          0.7, 0.8, 0.9, 1.0}) {
    ExperimentConfig config;
    config.a = 22;
    config.d = 3;
    config.r = 3;
    config.fanout = 2;
    config.pd = pd;
    config.loss = 0.05;
    config.runs = runs;
    config.seed = 42;
    const auto sim = run_pmcast_experiment(config);
    const auto analysis = analyze_tree(config.analysis_params());
    table.add_row({Table::num(pd, 2), bench::pm(sim.delivery),
                   Table::num(analysis.reliability),
                   Table::num(sim.rounds.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: delivery ≈ 1 for p_d >= 0.3 and degrades as"
               " p_d -> 0 (Pittel small-population anomaly, Sec. 5.1).\n";
  return 0;
}

// FIG4 — paper Figure 4: "Infected Interested Processes".
// Probability that an interested process delivers a multicast event, as a
// function of the fraction of interested processes p_d.
// Configuration from the figure caption: n ≈ 10000 (a = 22), d = 3, R = 3,
// F = 2. We print the simulated probability (with 95% CIs) next to the
// Sec. 4 analysis prediction.
//
// Expected shape (paper): ≈ 1 for p_d ≳ 0.3, degrading towards small p_d
// because Pittel's asymptote under-estimates rounds for tiny audiences
// (Sec. 5.1).
#include "bench_common.hpp"

#include "analysis/tree_analysis.hpp"
#include "scenario_rows.hpp"

int main(int argc, char** argv) {
  using namespace pmc;
  bench::JsonWriter json(argc, argv, "fig4_delivery");
  const bool scenarios_only = bench::scenarios_only(argc, argv);
  const std::size_t runs = bench::runs_per_point(15);
  bench::print_header(
      "FIG4", "Probability of delivery for interested processes vs p_d",
      "n=10648 (a=22, d=3), R=3, F=2, eps=0.05, runs/point=" +
          std::to_string(runs));

  if (!scenarios_only) {
    Table table(
        {"p_d", "delivery(sim)", "delivery(analysis)", "rounds(sim)"});
    std::vector<std::vector<std::string>> dump;
    for (const double pd : {0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6,
                            0.7, 0.8, 0.9, 1.0}) {
      ExperimentConfig config;
      config.a = 22;
      config.d = 3;
      config.r = 3;
      config.fanout = 2;
      config.pd = pd;
      config.loss = 0.05;
      config.runs = runs;
      config.seed = 42;
      const auto sim = run_pmcast_experiment(config);
      const auto analysis = analyze_tree(config.analysis_params());
      table.add_row({Table::num(pd, 2), bench::pm(sim.delivery),
                     Table::num(analysis.reliability),
                     Table::num(sim.rounds.mean(), 1)});
      dump.push_back({Table::num(pd, 2), Table::num(sim.delivery.mean()),
                      Table::num(analysis.reliability),
                      Table::num(sim.rounds.mean(), 1)});
    }
    table.print(std::cout);
    json.add_table("delivery_vs_pd",
                   {"p_d", "delivery_sim", "delivery_analysis", "rounds_sim"},
                   dump);
    std::cout << "\nShape check: delivery ≈ 1 for p_d >= 0.3 and degrades as"
                 " p_d -> 0 (Pittel small-population anomaly, Sec. 5.1).\n";
  }

  // Adversarial rows: the same dissemination stack run through the
  // scenario engine's fault-injection layer (see scenario_rows.hpp for the
  // timeline shape and the invariants --gate-figures enforces).
  std::cout << "\nAdversarial scenarios (a=6, d=3, deterministic single"
               " runs, publish burst at 3s):\n";
  Table adv(bench::scenario_headers());
  std::vector<std::vector<std::string>> adv_dump;
  for (const auto& spec : bench::adversarial_scenarios()) {
    const auto summary = bench::run_adversarial_scenario(spec, 6, 3, 42);
    auto row = bench::scenario_row(spec, summary.live, summary);
    adv.add_row(row);
    adv_dump.push_back(std::move(row));
  }
  adv.print(std::cout);
  json.add_table("scenarios", bench::scenario_headers(), adv_dump);
  json.write();
  return 0;
}

// TAB-BASE — the comparison the paper's introduction argues qualitatively:
//   * gossip *broadcast* with filtering at delivery (pbcast/lpbcast style)
//     delivers reliably but infects everyone — uninterested reception ≈ 1;
//   * *genuine multicast* (filter before gossiping over partial random
//     views) never touches uninterested processes but isolates interested
//     ones when p_d is small;
//   * pmcast sits in between: high delivery, low uninterested reception;
//   * deterministic tree multicast ("treecast", the Astrolabe-style
//     comparison of Sec. 6) is cheap and perfectly reliable in a stable
//     fault-free phase — see tests/treecast_test.cpp for its collapse when
//     forwarders crash.
// We measure delivery, uninterested reception and messages per process at
// p_d ∈ {0.05, 0.2, 0.5} on a 1728-process group.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pmc;
  bench::JsonWriter json(argc, argv, "table_baselines");
  const std::size_t runs = bench::runs_per_point(10);
  bench::print_header(
      "TAB-BASE", "pmcast vs flooding broadcast vs genuine multicast",
      "n=1728 (a=12, d=3), R=3, F=3, eps=0.05, genuine view=20, runs/point=" +
          std::to_string(runs));

  Table table({"p_d", "algorithm", "delivery", "false-reception",
               "msgs/process"});
  for (const double pd : {0.05, 0.2, 0.5}) {
    ExperimentConfig config;
    config.a = 12;
    config.d = 3;
    config.r = 3;
    config.fanout = 3;
    config.pd = pd;
    config.loss = 0.05;
    config.runs = runs;
    config.seed = 47;

    const auto pm = run_pmcast_experiment(config);
    const auto fl = run_flooding_experiment(config);
    const auto ge = run_genuine_experiment(config, /*view_size=*/20);
    const auto tr = run_treecast_experiment(config);

    table.add_row({Table::num(pd, 2), "pmcast", bench::pm(pm.delivery, 3),
                   bench::pm(pm.false_reception, 3),
                   Table::num(pm.messages_per_process.mean(), 2)});
    table.add_row({Table::num(pd, 2), "flooding", bench::pm(fl.delivery, 3),
                   bench::pm(fl.false_reception, 3),
                   Table::num(fl.messages_per_process.mean(), 2)});
    table.add_row({Table::num(pd, 2), "genuine", bench::pm(ge.delivery, 3),
                   bench::pm(ge.false_reception, 3),
                   Table::num(ge.messages_per_process.mean(), 2)});
    table.add_row({Table::num(pd, 2), "treecast", bench::pm(tr.delivery, 3),
                   bench::pm(tr.false_reception, 3),
                   Table::num(tr.messages_per_process.mean(), 2)});
  }
  table.print(std::cout);
  json.add_table("baselines", table.headers(), table.rows());
  json.write();
  std::cout << "\nShape check: flooding false-reception ≈ 1 at every p_d;"
               " genuine false-reception = 0 but delivery collapses at small"
               " p_d; pmcast keeps delivery high at a small false-reception"
               " cost, using far fewer messages than flooding for small"
               " p_d.\n";
  return 0;
}

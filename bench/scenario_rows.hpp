// Adversarial scenario rows for the paper-figure benches.
//
// The classic fig4/fig6 sweeps measure delivery in a static, calm group.
// These rows re-run the dissemination stack through the scenario engine
// under the fault-injection layer — WAN latency profiles, flapping and
// asymmetric partitions, correlated rack failures, duplicate storms — and
// report the stable-phase delivery ratio (delivered / expected at publish
// time) plus the injector audit counters. Each row is ONE deterministic
// ChurnSim run (fixed seed, no sampling): the JSON snapshot is
// byte-reproducible and tools/check_bench_json.py --gate-figures enforces
//   * delivered <= expected           (exactly-once, also under dup bursts)
//   * ratio >= a per-scenario floor   (delivery must survive the faults)
//   * dup rows suppressed duplicates  (the injector actually fired)
// on every CI run.
//
// The timeline shape is shared: faults land in [100ms, 2.9s], the publish
// burst starts at 3s (the "stable phase" — after heals for the partition
// rows, *inside* the burst window for the duplicate row), and the run
// drains until 6s. Expected deliveries are counted at publish time over
// live matching processes, so rows that crash processes (rack) owe fewer
// deliveries rather than fake a loss.
#pragma once

#include "bench_common.hpp"

#include "harness/scenario.hpp"

namespace pmc::bench {

struct ScenarioSpec {
  const char* name;
  const char* script;
};

/// The adversarial suite: calm control + five fault rows. Every script
/// ends with the same stable-phase publish burst so ratios are comparable
/// down a column.
inline const std::vector<ScenarioSpec>& adversarial_scenarios() {
  static const std::vector<ScenarioSpec> specs = {
      {"calm",  //
       "at 3s publish 12 every 20ms\n"},
      {"wan",  //
       "at 100ms latency lognormal 2ms 0.8\n"
       "at 3s publish 12 every 20ms\n"},
      {"flap",  //
       "at 200ms flap 0 period 200ms duty 0.3 until 5s\n"
       "at 3s publish 12 every 20ms\n"},
      {"asym",  //
       "at 400ms asym 0 to 1 heal 2500ms\n"
       "at 3s publish 12 every 20ms\n"},
      {"rack",  //
       "at 500ms rack 0\n"
       "at 3s publish 12 every 20ms\n"},
      {"dup",  //
       "at 2900ms duplicate 0.5 for 1500ms\n"
       "at 3s publish 12 every 20ms\n"},
  };
  return specs;
}

inline constexpr SimTime kScenarioHorizon = sim_ms(6000);

/// One deterministic run of `spec` over a group of shape (a, d).
inline ChurnSummary run_adversarial_scenario(const ScenarioSpec& spec,
                                             std::size_t a, std::size_t d,
                                             std::uint64_t seed) {
  ChurnConfig config;
  config.a = a;
  config.d = d;
  config.r = 2;
  config.pd = 0.5;
  config.initial_fill = 0.75;
  config.loss = 0.01;
  config.fanout = 3;
  config.seed = seed;
  ChurnSim sim(config);
  sim.play(ScenarioScript::parse(spec.script));
  sim.run_until(kScenarioHorizon);
  return sim.summary();
}

/// Formats one table row (shared column layout of both fig benches).
inline std::vector<std::string> scenario_row(const ScenarioSpec& spec,
                                             std::size_t n,
                                             const ChurnSummary& s) {
  const double ratio =
      s.counters.expected_deliveries == 0
          ? 0.0
          : static_cast<double>(s.counters.delivered) /
                static_cast<double>(s.counters.expected_deliveries);
  return {spec.name,
          Table::integer(n),
          Table::integer(s.counters.published),
          Table::integer(s.counters.expected_deliveries),
          Table::integer(s.counters.delivered),
          Table::num(ratio, 4),
          Table::integer(s.dup_suppressed),
          Table::integer(s.shed_events),
          Table::integer(s.network.duplicated),
          Table::integer(s.network.reordered)};
}

inline const std::vector<std::string>& scenario_headers() {
  static const std::vector<std::string> headers = {
      "scenario", "n",     "published", "expected", "delivered",
      "ratio",    "dup_suppressed", "shed", "net_dup", "net_reorder"};
  return headers;
}

/// True when the binary was invoked with `--scenarios-only` (smoke mode:
/// skip the classic sweep, print/emit only the scenario table).
inline bool scenarios_only(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--scenarios-only") return true;
  return false;
}

}  // namespace pmc::bench

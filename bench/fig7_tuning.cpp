// FIG7 — paper Figure 7: "Tuned vs Untuned Algorithm".
// Delivery probability vs p_d for the original pmcast and the Sec. 5.3
// tuned variant: when fewer than h view members are interested at a depth,
// the first h members of the view are treated as interested, artificially
// enlarging the audience so Pittel's estimate stops starving tiny
// multicasts. Same configuration as Figure 4 (a=22, d=3, R=3, F=2).
//
// Expected shape (paper): the tuned ("Improved") curve dominates the
// untuned ("Original") one at small p_d and they coincide for large p_d;
// the price is a higher uninterested-reception rate (last two columns).
#include "bench_common.hpp"

int main() {
  using namespace pmc;
  const std::size_t runs = bench::runs_per_point(15);
  const std::size_t h = env_size_t("PMCAST_TUNING_H", 10);
  bench::print_header(
      "FIG7", "Tuned vs untuned delivery probability vs p_d",
      "n=10648 (a=22, d=3), R=3, F=2, eps=0.05, h=" + std::to_string(h) +
          ", runs/point=" + std::to_string(runs));

  Table table({"p_d", "original", "improved(h)", "falserec(orig)",
               "falserec(h)"});
  for (const double pd :
       {0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    ExperimentConfig config;
    config.a = 22;
    config.d = 3;
    config.r = 3;
    config.fanout = 2;
    config.pd = pd;
    config.loss = 0.05;
    config.runs = runs;
    config.seed = 45;
    const auto untuned = run_pmcast_experiment(config);
    config.tuning_threshold = h;
    const auto tuned = run_pmcast_experiment(config);
    table.add_row({Table::num(pd, 2), bench::pm(untuned.delivery, 3),
                   bench::pm(tuned.delivery, 3),
                   Table::num(untuned.false_reception.mean(), 3),
                   Table::num(tuned.false_reception.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: 'improved' >= 'original' at small p_d, equal"
               " for large p_d; false reception grows under tuning.\n";
  return 0;
}

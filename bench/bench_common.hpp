// Shared helpers for the figure/table bench binaries.
//
// Every binary prints the series of one figure or table from the paper's
// evaluation (DESIGN.md §5 maps ids to binaries). Run counts are modest by
// default so `for b in build/bench/*; do $b; done` finishes in minutes;
// export PMCAST_RUNS to tighten the confidence intervals.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace pmc::bench {

inline std::size_t runs_per_point(std::size_t fallback) {
  return env_size_t("PMCAST_RUNS", fallback);
}

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& params) {
  std::cout << "=====================================================\n"
            << id << " — " << title << "\n"
            << params << "\n"
            << "=====================================================\n";
}

inline std::string pm(const Summary& s, int precision = 4) {
  return Table::num(s.mean(), precision) + " ±" +
         Table::num(s.ci95_halfwidth(), precision);
}

}  // namespace pmc::bench

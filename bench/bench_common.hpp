// Shared helpers for the figure/table bench binaries.
//
// Every binary prints the series of one figure or table from the paper's
// evaluation (DESIGN.md §5 maps ids to binaries). Run counts are modest by
// default so `for b in build/bench/*; do $b; done` finishes in minutes;
// export PMCAST_RUNS to tighten the confidence intervals.
//
// Machine-readable results: every table_* binary (and micro_benchmarks)
// accepts `--json <file>` and writes the pmcast-bench-v1 schema —
//
//   {
//     "schema": "pmcast-bench-v1",
//     "binary": "<bench id>",
//     "tables": [
//       { "title": "<section>", "headers": ["col", ...],
//         "rows": [[cell, ...], ...] }
//     ]
//   }
//
// Cells are JSON numbers when the printed cell parses as one, else JSON
// strings, so the JSON mirrors the human tables exactly.
// tools/check_bench_json.py validates the schema and gates the perf-smoke
// CI job on it; committed BENCH_*.json snapshots record the perf
// trajectory PR over PR.
#pragma once

#ifndef _WIN32
#include <sys/resource.h>
#endif

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace pmc::bench {

inline std::size_t runs_per_point(std::size_t fallback) {
  return env_size_t("PMCAST_RUNS", fallback);
}

/// Peak RSS of this process in bytes — the getrusage ru_maxrss high-water
/// mark, which only ever grows. ru_maxrss is reported in KILOBYTES on
/// Linux but in BYTES on macOS (a classic silent 1024x unit bug when the
/// caller divides unconditionally), so the platform branch lives here,
/// once, for every bench binary. Returns 0 on Windows (no getrusage).
inline std::uint64_t peak_rss_bytes() {
#ifdef _WIN32
  return 0;
#else
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
#ifdef __APPLE__
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#endif
}

inline double peak_rss_mb() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& params) {
  std::cout << "=====================================================\n"
            << id << " — " << title << "\n"
            << params << "\n"
            << "=====================================================\n";
}

inline std::string pm(const Summary& s, int precision = 4) {
  return Table::num(s.mean(), precision) + " ±" +
         Table::num(s.ci95_halfwidth(), precision);
}

/// True when `cell` prints as a JSON-compatible number ("12", "-3.5",
/// "0.25"; not "1e3x" or "±0.1").
inline bool cell_is_number(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = cell[0] == '-' ? 1 : 0;
  if (i == cell.size()) return false;
  bool digit = false, dot = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Collects the tables a bench binary prints and mirrors them to a
/// pmcast-bench-v1 JSON file when the binary was invoked with
/// `--json <file>`. Without the flag every call is a no-op, so binaries
/// wire it up unconditionally.
class JsonWriter {
 public:
  /// Parses `--json <file>` out of the command line (the flag may appear
  /// anywhere; other arguments are left for the binary to interpret).
  JsonWriter(int argc, char** argv, std::string binary_id)
      : binary_(std::move(binary_id)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        if (i + 1 >= argc)
          throw std::invalid_argument("--json requires a file path");
        path_ = argv[i + 1];
        ++i;
      }
    }
  }

  bool enabled() const noexcept { return !path_.empty(); }

  /// Records one printed table (same headers and stringified cells).
  void add_table(const std::string& title,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
    if (!enabled()) return;
    tables_.push_back(TableDump{title, headers, rows});
  }

  /// Writes the file (call once, after the last add_table). Throws on I/O
  /// failure so a broken --json path fails the bench run loudly.
  void write() const {
    if (!enabled()) return;
    std::ofstream out(path_);
    if (!out) throw std::runtime_error("cannot open " + path_);
    out << "{\n  \"schema\": \"pmcast-bench-v1\",\n  \"binary\": \""
        << json_escape(binary_) << "\",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& table = tables_[t];
      out << (t == 0 ? "" : ",") << "\n    { \"title\": \""
          << json_escape(table.title) << "\",\n      \"headers\": [";
      for (std::size_t h = 0; h < table.headers.size(); ++h)
        out << (h == 0 ? "" : ", ") << '"' << json_escape(table.headers[h])
            << '"';
      out << "],\n      \"rows\": [";
      for (std::size_t r = 0; r < table.rows.size(); ++r) {
        out << (r == 0 ? "" : ",") << "\n        [";
        for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
          const auto& cell = table.rows[r][c];
          out << (c == 0 ? "" : ", ");
          if (cell_is_number(cell))
            out << cell;
          else
            out << '"' << json_escape(cell) << '"';
        }
        out << "]";
      }
      out << "\n      ] }";
    }
    out << "\n  ]\n}\n";
    if (!out.good()) throw std::runtime_error("write failed: " + path_);
    std::cout << "\nwrote " << path_ << "\n";
  }

 private:
  struct TableDump {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string binary_;
  std::string path_;
  std::vector<TableDump> tables_;
};

}  // namespace pmc::bench

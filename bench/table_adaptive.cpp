// TABLE (adaptive) — static vs. adaptive ε/τ estimation under hostile
// scenario scripts.
//
// The paper's Eq. 11 round bound assumes every process knows the
// environment's loss ε and crash rate τ; a static deployment freezes that
// estimate at configuration time, so a loss burst runs with a bound
// computed for calm weather. This table replays the same scripted
// LossBurst/Partition timelines twice — once with the frozen estimate,
// once with the online EnvEstimator (--adaptive in pmcast_sim) — and
// reports how many receivers each published event still reaches, next to
// the live mean ε̂ the estimators converged to.
//
// The run doubles as an acceptance gate: every row is replayed and must
// produce byte-identical summaries (the estimator is deterministic), and
// adaptive estimation must strictly improve delivery on at least one
// LossBurst row. The binary exits non-zero otherwise.
//
// PMCAST_CHURN_SCALE (default 1) multiplies the group like table_churn.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace {

using namespace pmc;

constexpr SimTime kHorizon = sim_ms(3000);

struct Row {
  std::string name;
  ScenarioScript script;
  bool loss_burst = false;  ///< rows eligible for the acceptance gate
};

ScenarioScript publishes() {
  ScenarioScript s;
  s.add(sim_ms(1300), PublishBurst{8, sim_ms(30)});
  s.add(sim_ms(1700), PublishBurst{8, sim_ms(30)});
  return s;
}

ScenarioScript with_burst(double eps, SimTime at, SimTime duration) {
  ScenarioScript s;
  s.add(at, LossBurst{eps, duration});
  const ScenarioScript pubs = publishes();
  for (const auto& a : pubs.actions()) s.add(a.at, a.op);
  return s;
}

struct Cell {
  ChurnSummary summary;
  bool reproducible = false;
};

Cell run_row(const ChurnConfig& config, const ScenarioScript& script) {
  const auto once = [&] {
    ChurnSim sim(config);
    sim.play(script);
    sim.run_until(kHorizon);
    return sim.summary();
  };
  Cell cell;
  cell.summary = once();
  cell.reproducible = once() == cell.summary;  // byte-identical replay
  return cell;
}

double per_event(const ChurnSummary& s) {
  return s.counters.published == 0
             ? 0.0
             : static_cast<double>(s.counters.delivered) /
                   static_cast<double>(s.counters.published);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json(argc, argv, "table_adaptive");
  const auto scale = env_size_t("PMCAST_CHURN_SCALE", 1);

  ChurnConfig config;
  config.a = 4 * scale;
  config.d = 2;
  config.r = 2;
  config.pd = 0.5;
  config.initial_fill = 0.8;
  config.loss = 0.02;
  config.period = sim_ms(50);
  config.seed = 4242;

  std::vector<Row> rows;
  rows.push_back({"calm (eps=0.02)", publishes(), false});
  rows.push_back(
      {"loss burst 0.35", with_burst(0.35, sim_ms(300), sim_ms(1800)),
       true});
  rows.push_back(
      {"loss burst 0.45", with_burst(0.45, sim_ms(300), sim_ms(2200)),
       true});
  {
    ScenarioScript s;
    s.add(sim_ms(250), Partition{{0}, sim_ms(2400)});
    s.add(sim_ms(300), LossBurst{0.30, sim_ms(1800)});
    const ScenarioScript pubs = publishes();
    for (const auto& a : pubs.actions()) s.add(a.at, a.op);
    rows.push_back({"partition + loss 0.30", s, true});
  }
  {
    ScenarioScript s;
    s.add(sim_ms(250), CrashNodes{3});
    s.add(sim_ms(300), LossBurst{0.40, sim_ms(2000)});
    const ScenarioScript pubs = publishes();
    for (const auto& a : pubs.actions()) s.add(a.at, a.op);
    rows.push_back({"crash burst + loss 0.40", s, true});
  }

  std::cout << "Static vs adaptive eps/tau estimation (capacity "
            << config.capacity() << ", base eps=" << config.loss
            << ", 16 events per row, bound re-tuned per depth):\n\n";

  Table t({"scenario", "recv/event static", "recv/event adaptive", "delta",
           "eps-hat", "tau-hat", "collapsed s/a"});
  bool all_reproducible = true;
  bool adaptive_wins_a_burst = false;
  for (auto& row : rows) {
    ChurnConfig static_cfg = config;
    static_cfg.adaptive = false;
    ChurnConfig adaptive_cfg = config;
    adaptive_cfg.adaptive = true;

    const Cell s = run_row(static_cfg, row.script);
    const Cell a = run_row(adaptive_cfg, row.script);
    all_reproducible = all_reproducible && s.reproducible && a.reproducible;

    const double ps = per_event(s.summary);
    const double pa = per_event(a.summary);
    if (row.loss_burst && pa > ps) adaptive_wins_a_burst = true;

    t.add_row({row.name, Table::num(ps, 2), Table::num(pa, 2),
               Table::num(pa - ps, 2),
               Table::num(static_cast<double>(a.summary.env_loss_ppm) / 1e6,
                          3),
               Table::num(static_cast<double>(a.summary.env_crash_ppm) / 1e6,
                          3),
               Table::integer(s.summary.bound_collapsed) + "/" +
                   Table::integer(a.summary.bound_collapsed)});
  }
  t.print(std::cout);
  json.add_table("adaptive", t.headers(), t.rows());
  json.write();

  std::cout << "\nrepro-check: "
            << (all_reproducible ? "identical summaries on replay"
                                 : "MISMATCH — determinism bug!")
            << "\nadaptive vs static on loss bursts: "
            << (adaptive_wins_a_burst
                    ? "adaptive strictly improves delivery on >= 1 row"
                    : "NO IMPROVEMENT — estimator not helping!")
            << "\n";
  return (all_reproducible && adaptive_wins_a_burst) ? 0 : 1;
}

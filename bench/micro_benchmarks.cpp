// MICRO — engineering micro-benchmarks (google-benchmark): the operations on
// pmcast's hot paths and the ablations DESIGN.md §6 calls out.
//  * subscription matching (individual and regrouped summaries),
//  * interest regrouping (exact interval union) and coarsened matching,
//  * delegate election,
//  * GroupTree construction and incremental membership updates,
//  * Markov-chain / Pittel analysis evaluation,
//  * one full simulated dissemination at a mid-size scale.
#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/markov.hpp"
#include "analysis/tree_analysis.hpp"
#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "membership/election.hpp"
#include "membership/sync.hpp"
#include "membership/tree.hpp"
#include "pmcast/node.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace pmc;

void BM_SubscriptionMatch(benchmark::State& state) {
  const auto sub = Subscription::parse(
      "b > 1 && 20.0 < c && c < 30.0 && z <= 50000");
  Event e;
  e.with("b", 2).with("c", 25.0).with("z", 1000);
  for (auto _ : state) benchmark::DoNotOptimize(sub.match(e));
}
BENCHMARK(BM_SubscriptionMatch);

void BM_SummaryMatch(benchmark::State& state) {
  // A regrouped summary over `range(0)` interval subscriptions: matching is
  // a binary search over the merged interval set.
  Rng rng(1);
  InterestSummary summary;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    summary.merge(InterestSummary::from(
        interval_subscription(rng.next_double(), 0.05)));
  const Event e = make_event_at(0, 0, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(summary.match(e));
}
BENCHMARK(BM_SummaryMatch)->Arg(8)->Arg(64)->Arg(512);

void BM_NaiveDisjunctionMatch(benchmark::State& state) {
  // Ablation baseline: matching the same interests WITHOUT regrouping is a
  // linear scan over all subscriptions (what Sec. 2.3 tells us to avoid).
  Rng rng(1);
  std::vector<Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    subs.push_back(interval_subscription(rng.next_double(), 0.05));
  const Event e = make_event_at(0, 0, 0.5);
  for (auto _ : state) {
    bool any = false;
    for (const auto& s : subs) any = any || s.match(e);
    benchmark::DoNotOptimize(any);
  }
}
BENCHMARK(BM_NaiveDisjunctionMatch)->Arg(8)->Arg(64)->Arg(512);

void BM_InterestRegrouping(benchmark::State& state) {
  Rng rng(2);
  std::vector<Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    subs.push_back(interval_subscription(rng.next_double(), 0.1));
  for (auto _ : state) {
    InterestSummary summary;
    for (const auto& s : subs) summary.merge(InterestSummary::from(s));
    benchmark::DoNotOptimize(summary.complexity());
  }
}
BENCHMARK(BM_InterestRegrouping)->Arg(8)->Arg(64)->Arg(256);

void BM_DelegateElection(benchmark::State& state) {
  Rng rng(3);
  const auto space = AddressSpace::regular(64, 3);
  const auto members = space.sample(static_cast<std::size_t>(state.range(0)),
                                    rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(elect_delegates(members, 3));
}
BENCHMARK(BM_DelegateElection)->Arg(16)->Arg(128)->Arg(1024);

void BM_GroupTreeBuild(benchmark::State& state) {
  const auto a = static_cast<AddrComponent>(state.range(0));
  Rng rng(4);
  const auto members =
      uniform_interest_members(AddressSpace::regular(a, 3), 0.5, rng);
  TreeConfig tc;
  tc.depth = 3;
  tc.redundancy = 3;
  for (auto _ : state) {
    Interns interns;
    GroupTree tree(tc, members, interns);
    benchmark::DoNotOptimize(tree.process_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(members.size()));
}
BENCHMARK(BM_GroupTreeBuild)->Arg(6)->Arg(12)->Arg(22)->Unit(benchmark::kMillisecond);

void BM_GroupTreeChurn(benchmark::State& state) {
  Rng rng(5);
  const auto members =
      uniform_interest_members(AddressSpace::regular(12, 3), 0.5, rng);
  TreeConfig tc;
  tc.depth = 3;
  tc.redundancy = 3;
  Interns interns;
  GroupTree tree(tc, members, interns);
  const Address victim = members[members.size() / 2].address;
  const Subscription sub = members[members.size() / 2].subscription;
  for (auto _ : state) {
    tree.remove_member(victim);
    tree.add_member(victim, sub);
  }
}
BENCHMARK(BM_GroupTreeChurn);

// --- Membership hot loops: SoA DepthView vs the legacy AoS row table -------

/// One view row in the layout this repo shipped with before the intern/SoA
/// refactor: heap-allocated Address delegates and an inline InterestSummary
/// per row. Kept as the baseline the BM_*SoA figures are measured against.
struct LegacyRow {
  AddrComponent infix = 0;
  std::uint64_t version = 0;
  std::uint64_t process_count = 0;
  bool alive = true;
  std::vector<Address> delegates;
  InterestSummary interests;
};

/// Builds matched populations: `n` rows, 2 delegates each, interests drawn
/// from a small recurring set (realistic: subscriptions repeat, which is
/// what lets the SoA path pool them).
std::vector<LegacyRow> legacy_rows(std::size_t n) {
  Rng rng(9);
  std::vector<InterestSummary> pool;
  for (int i = 0; i < 64; ++i)
    pool.push_back(
        InterestSummary::from(interval_subscription(rng.next_double(), 0.05)));
  std::vector<LegacyRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i].infix = static_cast<AddrComponent>(i);
    rows[i].version = i + 1;
    rows[i].process_count = 3;
    rows[i].delegates = {
        Address(std::vector<AddrComponent>{static_cast<AddrComponent>(i), 0}),
        Address(std::vector<AddrComponent>{static_cast<AddrComponent>(i), 1}),
    };
    rows[i].interests = pool[i % pool.size()];
  }
  return rows;
}

void soa_view_from(const std::vector<LegacyRow>& rows, Interns& interns,
                   DepthView& v) {
  v.bind(interns);
  for (const auto& row : rows) {
    ViewRow r;
    r.infix = row.infix;
    r.version = row.version;
    r.process_count = row.process_count;
    r.alive = row.alive;
    r.delegates = row.delegates;
    r.interests = row.interests;
    v.upsert(r);
  }
}

void BM_RecompactScanLegacyRows(benchmark::State& state) {
  // The SyncNode::recompact_own_rows inner loop over the old row layout:
  // merge live interests, gather delegate candidates, sum process counts.
  const auto rows = legacy_rows(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    InterestSummary summary;
    std::vector<Address> candidates;
    std::uint64_t count = 0;
    for (const auto& row : rows) {
      if (!row.alive) continue;
      summary.merge(row.interests);
      candidates.insert(candidates.end(), row.delegates.begin(),
                        row.delegates.end());
      count += row.process_count;
    }
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(candidates.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecompactScanLegacyRows)->Arg(1024)->Arg(16384);

void BM_RecompactScanSoA(benchmark::State& state) {
  // The same scan over the production struct-of-arrays DepthView.
  const auto rows = legacy_rows(static_cast<std::size_t>(state.range(0)));
  Interns interns;
  DepthView v;
  soa_view_from(rows, interns, v);
  std::vector<AddrId> candidates;
  for (auto _ : state) {
    InterestSummary summary;
    candidates.clear();
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (!v.alive(i)) continue;
      summary.merge(v.interests(i));
      const auto ids = v.delegates(i);
      candidates.insert(candidates.end(), ids.begin(), ids.end());
      count += v.process_count(i);
    }
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(candidates.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecompactScanSoA)->Arg(1024)->Arg(16384);

void BM_DigestBuildLegacyRows(benchmark::State& state) {
  // SyncNode::make_digest over the old layout: one (depth, infix, version)
  // triple per row, pointer-chasing through the AoS rows.
  const auto rows = legacy_rows(static_cast<std::size_t>(state.range(0)));
  std::vector<RowDigest> out;
  for (auto _ : state) {
    out.clear();
    for (const auto& row : rows)
      out.push_back(RowDigest{1, row.infix, row.version});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DigestBuildLegacyRows)->Arg(1024)->Arg(16384);

void BM_DigestBuildSoA(benchmark::State& state) {
  const auto rows = legacy_rows(static_cast<std::size_t>(state.range(0)));
  Interns interns;
  DepthView v;
  soa_view_from(rows, interns, v);
  std::vector<RowDigest> out;
  for (auto _ : state) {
    out.clear();
    for (std::size_t i = 0; i < v.size(); ++i)
      out.push_back(RowDigest{1, v.infix(i), v.version(i)});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DigestBuildSoA)->Arg(1024)->Arg(16384);

// --- Scheduler: calendar queue vs indexed heap vs tombstone queue ----------

/// Replica of the scheduler this repo shipped with before the indexed-heap
/// rewrite: std::priority_queue + two side hash-sets, lazy tombstones for
/// cancel, one std::function allocation per event. Kept here verbatim (minus
/// contracts) as the baseline BM_SchedulerIndexedHeap* is measured against.
class LegacyScheduler {
 public:
  using Token = std::uint64_t;

  Token schedule_at(SimTime at, std::function<void()> fn) {
    const Token token = next_token_++;
    queue_.push(Item{at, token, std::move(fn)});
    live_.insert(token);
    return token;
  }
  void cancel(Token token) {
    if (live_.erase(token) != 0) cancelled_.insert(token);
  }
  bool step() {
    while (!queue_.empty()) {
      Item item = std::move(const_cast<Item&>(queue_.top()));
      queue_.pop();
      const auto it = cancelled_.find(item.token);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      live_.erase(item.token);
      now_ = item.at;
      item.fn();
      return true;
    }
    return false;
  }
  void run() {
    while (step()) {
    }
  }
  SimTime now() const noexcept { return now_; }

 private:
  struct Item {
    SimTime at;
    Token token;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.token > b.token;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::unordered_set<Token> live_;
  std::unordered_set<Token> cancelled_;
  SimTime now_ = 0;
  Token next_token_ = 1;
};

/// The simulator's dominant scheduler workload: every in-flight message is
/// one schedule+run, and every periodic timer is a schedule/cancel/reschedule
/// churn. Models both: `n` events scheduled at pseudo-random times, every
/// second one cancelled and replaced, then the queue drained.
template <class SchedulerT>
void scheduler_churn(SchedulerT& sched, std::size_t n,
                     std::uint64_t& sink) {
  std::vector<std::uint64_t> tokens;
  tokens.reserve(n);
  Rng rng(42);
  const SimTime base = sched.now();
  for (std::size_t i = 0; i < n; ++i) {
    const SimTime at = base + static_cast<SimTime>(rng.next_below(1000));
    tokens.push_back(
        sched.schedule_at(at, [&sink] { benchmark::DoNotOptimize(++sink); }));
  }
  for (std::size_t i = 0; i < n; i += 2) {
    sched.cancel(tokens[i]);
    const SimTime at = base + static_cast<SimTime>(rng.next_below(1000));
    sched.schedule_at(at, [&sink] { benchmark::DoNotOptimize(++sink); });
  }
  sched.run();
}

void BM_SchedulerLegacyTombstones(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    LegacyScheduler sched;
    scheduler_churn(sched, n, sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n + n / 2));
}
BENCHMARK(BM_SchedulerLegacyTombstones)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_SchedulerReferenceHeap(benchmark::State& state) {
  // PR 1's indexed binary heap, now the behavioral oracle
  // (sim/reference_scheduler.hpp).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    ReferenceScheduler sched;
    scheduler_churn(sched, n, sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n + n / 2));
}
BENCHMARK(BM_SchedulerReferenceHeap)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_SchedulerCalendarQueue(benchmark::State& state) {
  // The production scheduler: two-level calendar queue with same-time
  // cohort batching (this is the figure the perf-smoke CI job gates on).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    CalendarScheduler sched;
    scheduler_churn(sched, n, sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n + n / 2));
}
BENCHMARK(BM_SchedulerCalendarQueue)->Arg(1024)->Arg(16384)->Arg(131072);

// --- Network send path: per-send cost, single vs shared fan-out ------------

struct SendSink {
  std::uint64_t count = 0;
};

void network_send_bench(benchmark::State& state, bool multi) {
  constexpr std::size_t kTargets = 64;
  Scheduler sched;
  Network net(sched, NetworkConfig{}, Rng(11));
  net.reserve(kTargets);
  SendSink sink;
  std::vector<ProcessId> targets;
  for (ProcessId id = 0; id < kTargets; ++id) {
    net.attach(id, &sink, [](void* s, ProcessId, const MessagePtr&) {
      ++static_cast<SendSink*>(s)->count;
    });
    if (id != 0) targets.push_back(id);
  }
  const MessagePtr msg = std::make_shared<MessageBase>();
  for (auto _ : state) {
    if (multi) {
      net.send_multi(0, targets, msg);
    } else {
      for (const auto to : targets) net.send(0, to, msg);
    }
    sched.run();  // drain the deliveries
  }
  benchmark::DoNotOptimize(sink.count);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(targets.size()));
}

void BM_NetworkSendSingle(benchmark::State& state) {
  network_send_bench(state, /*multi=*/false);
}
BENCHMARK(BM_NetworkSendSingle);

void BM_NetworkSendMulti(benchmark::State& state) {
  network_send_bench(state, /*multi=*/true);
}
BENCHMARK(BM_NetworkSendMulti);

// --- Message dispatch: dynamic_cast chain vs MsgKind switch ----------------

std::vector<MessagePtr> mixed_messages(std::size_t n) {
  std::vector<MessagePtr> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0: {
        auto m = std::make_shared<GossipMsg>();
        m->event = std::make_shared<const Event>(EventId{1, i});
        out.push_back(std::move(m));
        break;
      }
      case 1: out.push_back(std::make_shared<EventDigestMsg>()); break;
      case 2: out.push_back(std::make_shared<EventRequestMsg>()); break;
      default: out.push_back(std::make_shared<EventPayloadMsg>()); break;
    }
  }
  return out;
}

void BM_DispatchDynamicCast(benchmark::State& state) {
  // The seed's PmcastNode::on_message dispatch: try each subclass in turn.
  const auto msgs = mixed_messages(1024);
  for (auto _ : state) {
    std::size_t matched = 0;
    for (const auto& msg : msgs) {
      if (dynamic_cast<const EventDigestMsg*>(msg.get()) != nullptr)
        matched += 1;
      else if (dynamic_cast<const EventRequestMsg*>(msg.get()) != nullptr)
        matched += 2;
      else if (dynamic_cast<const EventPayloadMsg*>(msg.get()) != nullptr)
        matched += 3;
      else if (dynamic_cast<const GossipMsg*>(msg.get()) != nullptr)
        matched += 4;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DispatchDynamicCast);

void BM_DispatchKindSwitch(benchmark::State& state) {
  const auto msgs = mixed_messages(1024);
  for (auto _ : state) {
    std::size_t matched = 0;
    for (const auto& msg : msgs) {
      switch (msg->kind) {
        case MsgKind::EventDigest: matched += 1; break;
        case MsgKind::EventRequest: matched += 2; break;
        case MsgKind::EventPayload: matched += 3; break;
        case MsgKind::Gossip: matched += 4; break;
        default: break;
      }
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DispatchKindSwitch);

void BM_PittelEstimate(benchmark::State& state) {
  const RoundEstimator est;
  EnvParams env;
  env.loss = 0.05;
  double n = 10648.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.faulty(n, 2.0, env));
  }
}
BENCHMARK(BM_PittelEstimate);

void BM_MarkovChainExpectation(benchmark::State& state) {
  const auto chain = InfectionChain::flat(
      static_cast<std::size_t>(state.range(0)), 2.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(chain.expected_infected(10, 1));
}
BENCHMARK(BM_MarkovChainExpectation)->Arg(22)->Arg(66)->Arg(200);

void BM_TreeAnalysis(benchmark::State& state) {
  TreeAnalysisParams p;
  p.a = 22;
  p.d = 3;
  p.r = 3;
  p.fanout = 2;
  p.pd = 0.5;
  p.env.loss = 0.05;
  for (auto _ : state) benchmark::DoNotOptimize(analyze_tree(p));
}
BENCHMARK(BM_TreeAnalysis);

void BM_FullDisseminationRun(benchmark::State& state) {
  // One complete single-event dissemination at n = a^3 per iteration
  // (tree construction amortized by the harness across runs).
  const auto a = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 100;
  for (auto _ : state) {
    ExperimentConfig config;
    config.a = a;
    config.d = 3;
    config.r = 3;
    config.fanout = 2;
    config.pd = 0.5;
    config.loss = 0.05;
    config.runs = 1;
    config.seed = seed++;
    benchmark::DoNotOptimize(run_pmcast_experiment(config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a * a * a));
}
BENCHMARK(BM_FullDisseminationRun)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

/// Mirrors every finished run into the pmcast-bench-v1 JSON (one "micro"
/// table: name, items_per_second, real ns/op) so the perf-smoke CI job and
/// the committed BENCH_*.json snapshots share one schema with the table
/// benches.
class JsonCollector final : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      double items_per_second = 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) items_per_second = it->second;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 /
                    static_cast<double>(run.iterations)
              : 0.0;
      rows_.push_back({run.benchmark_name(),
                       pmc::Table::num(items_per_second, 1),
                       pmc::Table::num(ns_per_op, 1)});
    }
  }

  void flush_to(pmc::bench::JsonWriter& json) const {
    json.add_table("micro", {"name", "items_per_second", "real_ns_per_op"},
                   rows_);
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags
// it does not know, so `--json <file>` is peeled off the command line
// before Initialize() sees it.
int main(int argc, char** argv) {
  pmc::bench::JsonWriter json(argc, argv, "micro_benchmarks");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;  // skip the flag and its value
      continue;
    }
    args.push_back(argv[i]);
  }
  // The library refuses a custom file reporter unless --benchmark_out is
  // set; the collector never writes to that stream, so route it nowhere.
  // detlint:allow(thread-confinement) argv storage built once in main before any threads
  static std::string dev_null = "--benchmark_out=/dev/null";
  if (json.enabled()) args.push_back(dev_null.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  if (json.enabled()) {
    JsonCollector collector;
    benchmark::RunSpecifiedBenchmarks(nullptr, &collector);
    collector.flush_to(json);
    json.write();
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

// MICRO — engineering micro-benchmarks (google-benchmark): the operations on
// pmcast's hot paths and the ablations DESIGN.md §6 calls out.
//  * subscription matching (individual and regrouped summaries),
//  * interest regrouping (exact interval union) and coarsened matching,
//  * delegate election,
//  * GroupTree construction and incremental membership updates,
//  * Markov-chain / Pittel analysis evaluation,
//  * one full simulated dissemination at a mid-size scale.
#include <benchmark/benchmark.h>

#include "analysis/markov.hpp"
#include "analysis/tree_analysis.hpp"
#include "harness/experiment.hpp"
#include "membership/election.hpp"
#include "membership/tree.hpp"

namespace {

using namespace pmc;

void BM_SubscriptionMatch(benchmark::State& state) {
  const auto sub = Subscription::parse(
      "b > 1 && 20.0 < c && c < 30.0 && z <= 50000");
  Event e;
  e.with("b", 2).with("c", 25.0).with("z", 1000);
  for (auto _ : state) benchmark::DoNotOptimize(sub.match(e));
}
BENCHMARK(BM_SubscriptionMatch);

void BM_SummaryMatch(benchmark::State& state) {
  // A regrouped summary over `range(0)` interval subscriptions: matching is
  // a binary search over the merged interval set.
  Rng rng(1);
  InterestSummary summary;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    summary.merge(InterestSummary::from(
        interval_subscription(rng.next_double(), 0.05)));
  const Event e = make_event_at(0, 0, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(summary.match(e));
}
BENCHMARK(BM_SummaryMatch)->Arg(8)->Arg(64)->Arg(512);

void BM_NaiveDisjunctionMatch(benchmark::State& state) {
  // Ablation baseline: matching the same interests WITHOUT regrouping is a
  // linear scan over all subscriptions (what Sec. 2.3 tells us to avoid).
  Rng rng(1);
  std::vector<Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    subs.push_back(interval_subscription(rng.next_double(), 0.05));
  const Event e = make_event_at(0, 0, 0.5);
  for (auto _ : state) {
    bool any = false;
    for (const auto& s : subs) any = any || s.match(e);
    benchmark::DoNotOptimize(any);
  }
}
BENCHMARK(BM_NaiveDisjunctionMatch)->Arg(8)->Arg(64)->Arg(512);

void BM_InterestRegrouping(benchmark::State& state) {
  Rng rng(2);
  std::vector<Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    subs.push_back(interval_subscription(rng.next_double(), 0.1));
  for (auto _ : state) {
    InterestSummary summary;
    for (const auto& s : subs) summary.merge(InterestSummary::from(s));
    benchmark::DoNotOptimize(summary.complexity());
  }
}
BENCHMARK(BM_InterestRegrouping)->Arg(8)->Arg(64)->Arg(256);

void BM_DelegateElection(benchmark::State& state) {
  Rng rng(3);
  const auto space = AddressSpace::regular(64, 3);
  const auto members = space.sample(static_cast<std::size_t>(state.range(0)),
                                    rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(elect_delegates(members, 3));
}
BENCHMARK(BM_DelegateElection)->Arg(16)->Arg(128)->Arg(1024);

void BM_GroupTreeBuild(benchmark::State& state) {
  const auto a = static_cast<AddrComponent>(state.range(0));
  Rng rng(4);
  const auto members =
      uniform_interest_members(AddressSpace::regular(a, 3), 0.5, rng);
  TreeConfig tc;
  tc.depth = 3;
  tc.redundancy = 3;
  for (auto _ : state) {
    GroupTree tree(tc, members);
    benchmark::DoNotOptimize(tree.process_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(members.size()));
}
BENCHMARK(BM_GroupTreeBuild)->Arg(6)->Arg(12)->Arg(22)->Unit(benchmark::kMillisecond);

void BM_GroupTreeChurn(benchmark::State& state) {
  Rng rng(5);
  const auto members =
      uniform_interest_members(AddressSpace::regular(12, 3), 0.5, rng);
  TreeConfig tc;
  tc.depth = 3;
  tc.redundancy = 3;
  GroupTree tree(tc, members);
  const Address victim = members[members.size() / 2].address;
  const Subscription sub = members[members.size() / 2].subscription;
  for (auto _ : state) {
    tree.remove_member(victim);
    tree.add_member(victim, sub);
  }
}
BENCHMARK(BM_GroupTreeChurn);

void BM_PittelEstimate(benchmark::State& state) {
  const RoundEstimator est;
  EnvParams env;
  env.loss = 0.05;
  double n = 10648.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.faulty(n, 2.0, env));
  }
}
BENCHMARK(BM_PittelEstimate);

void BM_MarkovChainExpectation(benchmark::State& state) {
  const auto chain = InfectionChain::flat(
      static_cast<std::size_t>(state.range(0)), 2.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(chain.expected_infected(10, 1));
}
BENCHMARK(BM_MarkovChainExpectation)->Arg(22)->Arg(66)->Arg(200);

void BM_TreeAnalysis(benchmark::State& state) {
  TreeAnalysisParams p;
  p.a = 22;
  p.d = 3;
  p.r = 3;
  p.fanout = 2;
  p.pd = 0.5;
  p.env.loss = 0.05;
  for (auto _ : state) benchmark::DoNotOptimize(analyze_tree(p));
}
BENCHMARK(BM_TreeAnalysis);

void BM_FullDisseminationRun(benchmark::State& state) {
  // One complete single-event dissemination at n = a^3 per iteration
  // (tree construction amortized by the harness across runs).
  const auto a = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 100;
  for (auto _ : state) {
    ExperimentConfig config;
    config.a = a;
    config.d = 3;
    config.r = 3;
    config.fanout = 2;
    config.pd = 0.5;
    config.loss = 0.05;
    config.runs = 1;
    config.seed = seed++;
    benchmark::DoNotOptimize(run_pmcast_experiment(config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a * a * a));
}
BENCHMARK(BM_FullDisseminationRun)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

// TAB-SHARDS — multi-group scaling: K topic shards on one runtime.
//
// The paper's scalability argument (Sec. 2.2, 4.3) is per-group: views and
// message costs stay bounded because each process only tracks its slice of
// one tree. The way a deployment scales past one group is by hosting many
// groups — topic shards — side by side, which is exactly what ShardedSim
// does. This table grows the shard count two ways:
//
//   A. fixed per-shard size  — each shard keeps a = 4, d = 2 (16 slots), so
//      the total population grows with K: cost per process should stay
//      flat (the shards are independent; there is no cross-shard membership
//      or dissemination traffic).
//   B. fixed total population — 256 slots split across K shards, so the
//      per-shard group shrinks as K grows: total message cost should
//      *fall* with K (smaller groups gossip to fewer delegates), the
//      mirror image of the per-group boundedness claim.
//
// Every row runs the same per-shard publish/churn script plus cross-shard
// publishers, and reports delivery, mean publish→deliver latency, network
// cost per process, scheduler throughput, and wall time.
#include <chrono>
#include <vector>

#include "bench_common.hpp"
#include "harness/shard.hpp"

namespace {

using namespace pmc;

ScenarioScript per_shard_script() {
  ScenarioScript s;
  s.add(sim_ms(300), PublishBurst{4, sim_ms(40)});
  s.add(sim_ms(700), CrashNodes{1});
  s.add(sim_ms(1100), PublishBurst{4, sim_ms(40)});
  return s;
}

struct Shape {
  std::size_t shards;
  std::size_t a;
  std::size_t d;
};

void run_section(const char* title, const std::vector<Shape>& shapes,
                 SimTime horizon, bench::JsonWriter& json) {
  std::cout << "\n" << title << "\n";
  Table t({"shards", "n/shard", "n total", "published", "delivered",
           "deliv/pub", "lat ms", "msgs", "msgs/proc", "sched ops",
           "wall ms"});
  for (const auto& shape : shapes) {
    ShardedConfig config;
    config.shards = shape.shards;
    config.shard.a = shape.a;
    config.shard.d = shape.d;
    config.shard.r = 2;
    config.shard.pd = 0.5;
    config.shard.initial_fill = 0.8;
    config.shard.loss = 0.02;
    config.shard.seed = 2027;
    if (shape.shards >= 2) {
      config.cross.publishers = std::min<std::size_t>(shape.shards, 4);
      config.cross.span = 2;
      config.cross.events = 4;
      config.cross.start = sim_ms(400);
      config.cross.spacing = sim_ms(100);
    }

    const auto wall_start = std::chrono::steady_clock::now();
    ShardedSim sim(config);
    sim.play_all(per_shard_script());
    sim.run_until(horizon);
    const auto summary = sim.summary();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    const std::size_t total = config.total_capacity();
    const auto& agg = summary.aggregate;
    const double processes = static_cast<double>(agg.live);
    t.add_row({Table::integer(shape.shards),
               Table::integer(config.shard.capacity()),
               Table::integer(total),
               Table::integer(agg.counters.published),
               Table::integer(agg.counters.delivered),
               Table::num(agg.counters.published == 0
                              ? 0.0
                              : static_cast<double>(agg.counters.delivered) /
                                    static_cast<double>(
                                        agg.counters.published),
                          1),
               Table::num(agg.latency_mean_ms(), 1),
               Table::integer(summary.network.sent),
               Table::num(processes == 0
                              ? 0.0
                              : static_cast<double>(summary.network.sent) /
                                    processes,
                          1),
               Table::integer(summary.scheduler_executed),
               Table::num(wall_ms, 1)});
  }
  t.print(std::cout);
  json.add_table(title, t.headers(), t.rows());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json(argc, argv, "table_shards");
  bench::print_header(
      "TAB-SHARDS", "multi-group scaling (topic shards on one runtime)",
      "per-shard script: publish 4, crash 1, publish 4; cross publishers "
      "span 2 shards; eps=0.02, R=2, pd=0.5, horizon 1.8s");

  const SimTime horizon = sim_ms(1800);
  // Section A now reaches 256 shards (16k processes) by default — the
  // ladder toward the 10^5-process rows bench/table_scale climbs to.
  run_section("A. fixed per-shard size (a=4, d=2 -> 16 slots per shard)",
              {{1, 4, 2}, {4, 4, 2}, {16, 4, 2}, {64, 4, 2}, {256, 4, 2}},
              horizon, json);
  run_section(
      "B. fixed total population (256 slots split across the shards)",
      {{1, 16, 2}, {4, 8, 2}, {16, 4, 2}, {64, 2, 2}}, horizon, json);
  json.write();

  std::cout << "\nExpected shape: in A, msgs/proc stays roughly flat as the\n"
               "population grows 16x (shards are independent); in B, total\n"
               "msgs falls as the same population splits into smaller\n"
               "groups. deliv/pub grows with the live interested audience\n"
               "per shard; latency stays in the few-gossip-period range.\n";
  return 0;
}

// FIG-CURVE — model validation for the Sec. 4.2 infection Markov chain:
// cumulative deliveries per gossip period from simulation, against the
// chain's expected infected count round by round. No figure in the paper
// plots this directly, but the chain (Eqs. 8-10) underpins every reliability
// number, so regenerating the trajectory shows the model holds, not just
// the endpoint. Run on a flat group (d = 1) where the chain is exact.
#include "bench_common.hpp"

#include <map>

#include "analysis/markov.hpp"
#include "pmcast/node.hpp"

int main() {
  using namespace pmc;
  const std::size_t runs = bench::runs_per_point(30);
  const std::size_t n = 64;
  const std::size_t fanout = 2;
  const double loss = 0.05;
  bench::print_header(
      "FIG-CURVE", "Infected processes per round: simulation vs Markov chain",
      "flat group n=64, F=2, pd=1.0, eps=0.05, runs=" + std::to_string(runs));

  // Simulation: count cumulative deliveries at each period boundary.
  const SimTime period = sim_ms(100);
  std::map<std::size_t, Accumulator> infected_at_round;
  std::size_t max_round = 0;
  for (std::uint64_t seed = 0; seed < runs; ++seed) {
    Rng rng(seed);
    const auto space =
        AddressSpace::regular(static_cast<AddrComponent>(n), 1);
    const auto members = uniform_interest_members(space, 1.0, rng);
    TreeConfig tc;
    tc.depth = 1;
    tc.redundancy = 1;
    Interns interns;
    const GroupTree tree(tc, members, interns);
    const TreeViewProvider views(tree);
    NetworkConfig net;
    net.loss_probability = loss;
    Runtime rt(net, 1000 + seed);
    std::vector<ProcessId> dir;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const AddrId id = interns.addrs.intern(members[i].address);
      if (dir.size() <= id) dir.resize(id + 1, kNoProcess);
      dir[id] = static_cast<ProcessId>(i);
    }
    PmcastConfig config;
    config.tree = tc;
    config.fanout = fanout;
    config.period = period;
    config.env.prior.loss = loss;
    std::vector<std::unique_ptr<PmcastNode>> nodes;
    for (std::size_t i = 0; i < members.size(); ++i)
      nodes.push_back(std::make_unique<PmcastNode>(
          rt, static_cast<ProcessId>(i), config, members[i].address,
          members[i].subscription, views, [&dir](AddrId id) {
            return id < dir.size() ? dir[id] : kNoProcess;
          }));
    nodes[0]->pmcast(make_event_at(0, seed, 0.5));

    std::size_t round = 0;
    while (!rt.scheduler().empty() && round < 40) {
      rt.run_for(period);
      ++round;
      std::size_t infected = 0;
      for (const auto& node : nodes)
        if (node->has_received(EventId{0, seed}) ||
            node->stats().published > 0)
          ++infected;
      infected_at_round[round].add(static_cast<double>(infected));
      max_round = std::max(max_round, round);
    }
    // Extend the final count to later rounds so means stay comparable.
    std::size_t final_infected = 0;
    for (const auto& node : nodes)
      if (node->has_received(EventId{0, seed}) ||
          node->stats().published > 0)
        ++final_infected;
    for (std::size_t r = round + 1; r <= 25; ++r) {
      infected_at_round[r].add(static_cast<double>(final_infected));
      max_round = std::max(max_round, r);
    }
  }

  // Analysis: the chain's E[s_t] round by round.
  EnvParams env;
  env.loss = loss;
  const auto chain =
      InfectionChain::flat(n, static_cast<double>(fanout), env);

  Table table({"round", "infected(sim)", "E[s_t](chain)"});
  for (std::size_t r = 1; r <= std::min<std::size_t>(max_round, 25); ++r) {
    table.add_row({Table::integer(r),
                   Table::num(infected_at_round[r].mean(), 2),
                   Table::num(chain.expected_infected(r), 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: both trajectories are S-curves converging to"
               " ~n; the simulated curve tracks the chain within a round or"
               " two (the gossip stops at Pittel's bound, the chain runs"
               " on).\n";
  return 0;
}

// TABLE (churn) — dissemination robustness under scripted churn/faults.
//
// Runs the same publish workload through the scenario engine under
// increasingly hostile timelines (calm → crash burst → partition →
// full storm with a loss spike) and reports how many receivers each
// published event still reaches, next to the network cost. The paper's
// qualitative claim (Sec. 1, Sec. 6): gossip keeps delivering through
// "unstable phases" that sever deterministic schemes.
//
// PMCAST_CHURN_SCALE (default 1) multiplies the group: 1 -> a=4 (n<=16),
// 2 -> a=8 (n<=64), 3 -> a=12 (n<=144), ...
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace {

using namespace pmc;

struct Row {
  std::string name;
  ScenarioScript script;
};

ScenarioScript publishes() {
  ScenarioScript s;
  s.add(sim_ms(500), PublishBurst{8, sim_ms(40)});
  s.add(sim_ms(1500), PublishBurst{8, sim_ms(40)});
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json(argc, argv, "table_churn");
  const auto scale = env_size_t("PMCAST_CHURN_SCALE", 1);

  ChurnConfig config;
  config.a = 4 * scale;
  config.d = 2;
  config.r = 2;
  config.pd = 0.5;
  config.initial_fill = 0.8;
  config.loss = 0.02;
  config.period = sim_ms(50);
  config.seed = 2027;

  std::vector<Row> rows;
  rows.push_back({"calm", publishes()});
  {
    ScenarioScript s = publishes();
    ScenarioScript mixed;
    mixed.add(sim_ms(450), CrashNodes{3});
    for (const auto& a : s.actions()) mixed.add(a.at, a.op);
    rows.push_back({"crash burst", mixed});
  }
  {
    ScenarioScript s;
    s.add(sim_ms(400), Partition{{0, 1}, sim_ms(1300)});
    s.add(sim_ms(450), CrashNodes{3});
    s.add(sim_ms(500), PublishBurst{8, sim_ms(40)});
    s.add(sim_ms(1500), PublishBurst{8, sim_ms(40)});
    rows.push_back({"crash + partition", s});
  }
  {
    ScenarioScript s;
    s.add(sim_ms(400), Partition{{0, 1}, sim_ms(1300)});
    s.add(sim_ms(450), CrashNodes{3});
    s.add(sim_ms(500), PublishBurst{8, sim_ms(40)});
    s.add(sim_ms(600), LossBurst{0.30, sim_ms(600)});
    s.add(sim_ms(1500), PublishBurst{8, sim_ms(40)});
    s.add(sim_ms(1600), Join{2});
    s.add(sim_ms(1800), RecoverNodes{2});
    rows.push_back({"storm (loss spike, churn)", s});
  }

  std::cout << "Dissemination under scripted churn (capacity "
            << config.capacity() << ", base eps=" << config.loss
            << ", 16 events per row):\n\n";
  Table t({"scenario", "live end", "published", "delivered",
           "recv/event", "net sent", "filtered", "tombstones"});
  for (auto& row : rows) {
    ChurnSim sim(config);
    sim.play(row.script);
    sim.run_until(sim_ms(3000));
    const auto s = sim.summary();
    const double per_event =
        s.counters.published == 0
            ? 0.0
            : static_cast<double>(s.counters.delivered) /
                  static_cast<double>(s.counters.published);
    t.add_row({row.name, Table::integer(s.live),
               Table::integer(s.counters.published),
               Table::integer(s.counters.delivered),
               Table::num(per_event, 2), Table::integer(s.network.sent),
               Table::integer(s.network.filtered),
               Table::integer(s.membership_tombstones)});
  }
  t.print(std::cout);
  json.add_table("churn", t.headers(), t.rows());
  json.write();
  return 0;
}

// TAB-ROUNDS — paper Sec. 4.3's round-count claim: "the number of rounds
// necessary to infect an entire group can be shown to be the same without a
// tree, as in an arbitrary-depth tree; namely Tf(n, F)" — the tree costs
// (almost) nothing in latency. We print:
//   * T_tot  — the per-depth sum of Eq. 13 (deliberately pessimistic),
//   * Tf(n,F) — the flat-group bound,
//   * measured — gossip periods until quiescence in simulation for pmcast
//     on the tree, and for the flooding baseline on the flat group.
#include "bench_common.hpp"

#include "analysis/tree_analysis.hpp"

int main(int argc, char** argv) {
  using namespace pmc;
  bench::JsonWriter json(argc, argv, "table_rounds");
  const std::size_t runs = bench::runs_per_point(10);
  bench::print_header(
      "TAB-ROUNDS", "Rounds to disseminate: tree vs flat group",
      "R=3, eps=0.05, pd=1.0, runs/point=" + std::to_string(runs));

  struct Case {
    std::size_t a, d, fanout;
  };
  const Case cases[] = {
      {8, 2, 2},  {8, 2, 3},  {12, 2, 2}, {22, 2, 2},
      {8, 3, 2},  {12, 3, 3}, {22, 3, 2}, {22, 3, 3},
  };

  Table table({"a", "d", "F", "n", "T_tot(Eq13)", "Tf(n,F)",
               "rounds(pmcast)", "rounds(flood)"});
  for (const auto& c : cases) {
    ExperimentConfig config;
    config.a = c.a;
    config.d = c.d;
    config.r = 3;
    config.fanout = c.fanout;
    config.pd = 1.0;  // whole-group dissemination isolates the round cost
    config.loss = 0.05;
    config.runs = runs;
    config.seed = 46;

    const auto analysis = analyze_tree(config.analysis_params());
    const RoundEstimator estimator;
    EnvParams env;
    env.loss = config.loss;
    const double flat = estimator.faulty(
        static_cast<double>(config.group_size()),
        static_cast<double>(c.fanout), env);

    const auto pmcast_result = run_pmcast_experiment(config);
    const auto flood_result = run_flooding_experiment(config);

    table.add_row({Table::integer(c.a), Table::integer(c.d),
                   Table::integer(c.fanout),
                   Table::integer(config.group_size()),
                   Table::num(analysis.total_rounds, 1),
                   Table::num(flat, 1),
                   Table::num(pmcast_result.rounds.mean(), 1),
                   Table::num(flood_result.rounds.mean(), 1)});
  }
  table.print(std::cout);
  json.add_table("rounds", table.headers(), table.rows());
  json.write();
  std::cout << "\nShape check: measured pmcast rounds stay within a small"
               " constant of the flat bound Tf(n,F); T_tot (the naive sum)"
               " over-estimates, as the paper notes.\n";
  return 0;
}

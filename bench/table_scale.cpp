// TAB-SCALE — raw simulator scaling: how many processes one runtime hosts
// and how fast the hot loop runs them.
//
// The paper's pitch is that pmcast's per-process cost stays flat as the
// system grows; demonstrating that at fig4/fig6 scale needs a simulator
// whose scheduler and send path keep up at 10^5 processes. This bench is
// the yardstick for that engineering claim (the protocol-level shapes live
// in table_shards/fig6): every row boots a full dynamic-group deployment —
// SyncNode anti-entropy membership + PmcastNode dissemination per process —
// runs a publish workload for a fixed sim horizon, and reports raw engine
// throughput:
//
//   A. one group, growing capacity — stresses per-node view sizes and the
//      scheduler's same-time period cohorts within a single group;
//   B. topic shards of fixed size (a=4, d=2: 32 processes each), growing
//      the shard count to 1,000,000 processes — one runtime per shard on
//      a worker pool, the deployment shape ShardedSim exists for.
//
// Columns: live processes, worker threads, host cores, sim events
// executed, sched-ops/s, messages sent, msgs/s, wall-clock, peak RSS
// (bench::peak_rss_bytes — a process-wide high-water mark, which is why
// rows run smallest to largest), and B/proc (peak RSS divided by process
// count — the machine-independent memory figure check_bench_json.py gates
// on). A row whose run never raised the high-water mark prints `n/a` for
// B/proc: the RSS predates that row's boot, so dividing it by the row's
// process count would attribute some earlier, fatter row's memory to this
// one. sched-ops/s here is end-to-end (event execution including protocol
// work), the deployment-shaped complement to the synthetic
// micro_benchmarks scheduler figure.
//
// The 100k sharded row additionally runs at 2 and 8 worker threads — same
// deployment, byte-identical counters (the barrier engine guarantees it),
// only wall-clock may move. check_bench_json.py --gate-parallel reads the
// threads/cores columns to verify both the identity and the speedup.
//
// `--max-processes N` skips rows larger than N (the perf-smoke CI job runs
// a small prefix); `--json <file>` writes the pmcast-bench-v1 schema —
// BENCH_scale.json in the repo root is a committed snapshot.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "harness/shard.hpp"

namespace {

using namespace pmc;

ScenarioScript publish_script() {
  ScenarioScript s;
  s.add(sim_ms(300), PublishBurst{4, sim_ms(40)});
  s.add(sim_ms(700), PublishBurst{4, sim_ms(40)});
  return s;
}

struct RowResult {
  std::size_t processes = 0;
  std::size_t threads = 1;
  std::uint64_t sched_executed = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t delivered = 0;
  double boot_ms = 0.0;  ///< construction: trees, views, process spawn
  double run_ms = 0.0;   ///< the event loop itself
  std::uint64_t rss_before = 0;  ///< high-water mark before this row booted
  std::uint64_t rss_after = 0;   ///< high-water mark after this row ran
};

void report(Table& t, const RowResult& r, const std::string& label) {
  // Throughput is measured over the event loop alone; boot (tree and view
  // construction, process spawn) is reported separately so the hot-path
  // figure is not diluted by one-time setup.
  const double run_s = r.run_ms / 1000.0;
  const double procs = static_cast<double>(r.processes);
  // ru_maxrss never shrinks, so a row that fits inside an earlier row's
  // footprint reports a high-water mark that predates its own boot —
  // dividing that by this row's process count yields nonsense (the stale
  // figure that polluted earlier BENCH_scale.json snapshots). Only claim
  // B/proc when THIS row pushed the mark.
  const bool rss_is_this_row = r.rss_after > r.rss_before;
  t.add_row({label, Table::integer(r.processes), Table::integer(r.threads),
             Table::integer(std::thread::hardware_concurrency()),
             Table::integer(r.sched_executed),
             Table::num(static_cast<double>(r.sched_executed) / procs, 1),
             Table::num(run_s > 0 ? static_cast<double>(r.sched_executed) /
                                        run_s / 1e6
                                  : 0.0,
                        2),
             Table::integer(r.msgs_sent),
             Table::num(static_cast<double>(r.msgs_sent) / procs, 1),
             Table::num(run_s > 0 ? static_cast<double>(r.msgs_sent) /
                                        run_s / 1e6
                                  : 0.0,
                        2),
             Table::integer(r.delivered), Table::num(r.boot_ms, 1),
             Table::num(r.run_ms, 1),
             Table::num(static_cast<double>(r.rss_after) / (1024.0 * 1024.0),
                        1),
             rss_is_this_row
                 ? Table::num(static_cast<double>(r.rss_after) / procs, 1)
                 : "n/a"});
}

const std::vector<std::string> kHeaders = {
    "row",     "processes", "threads",   "cores",     "sched ops",
    "ops/proc", "Mops/s",   "msgs sent", "msgs/proc", "Mmsg/s",
    "delivered", "boot ms",  "run ms",    "rss MB",    "B/proc"};

// One dynamic group of capacity a^d (2 protocol nodes per address).
RowResult run_single_group(std::size_t a, std::size_t d, SimTime horizon) {
  ChurnConfig cfg;
  cfg.a = a;
  cfg.d = d;
  cfg.r = 2;
  cfg.pd = 0.5;
  cfg.initial_fill = 0.8;
  cfg.loss = 0.02;
  cfg.seed = 2027;

  const std::uint64_t rss_before = bench::peak_rss_bytes();
  const auto boot_start = std::chrono::steady_clock::now();
  ChurnSim sim(cfg);
  sim.play(publish_script());
  const auto run_start = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const auto run_end = std::chrono::steady_clock::now();
  const auto summary = sim.summary();
  RowResult r;
  r.rss_before = rss_before;
  r.rss_after = bench::peak_rss_bytes();
  r.processes = 2 * cfg.capacity();
  r.sched_executed = summary.scheduler_executed;
  r.msgs_sent = summary.network.sent;
  r.delivered = summary.counters.delivered;
  r.boot_ms = std::chrono::duration<double, std::milli>(run_start -
                                                        boot_start)
                  .count();
  r.run_ms =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  return r;
}

// K topic shards of 16 addresses each (a=4, d=2), one runtime per shard,
// driven by `threads` worker lanes (1 = the serial reference engine).
RowResult run_sharded(std::size_t shards, SimTime horizon,
                      std::size_t threads) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.shard.a = 4;
  cfg.shard.d = 2;
  cfg.shard.r = 2;
  cfg.shard.pd = 0.5;
  cfg.shard.initial_fill = 0.8;
  cfg.shard.loss = 0.02;
  cfg.shard.seed = 2027;
  cfg.threads = threads;

  const std::uint64_t rss_before = bench::peak_rss_bytes();
  const auto boot_start = std::chrono::steady_clock::now();
  ShardedSim sim(cfg);
  sim.play_all(publish_script());
  const auto run_start = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const auto run_end = std::chrono::steady_clock::now();
  const auto summary = sim.summary();
  RowResult r;
  r.rss_before = rss_before;
  r.rss_after = bench::peak_rss_bytes();
  r.processes = 2 * cfg.total_capacity();
  r.threads = threads;
  r.sched_executed = summary.scheduler_executed;
  r.msgs_sent = summary.network.sent;
  r.delivered = summary.aggregate.counters.delivered;
  r.boot_ms = std::chrono::duration<double, std::milli>(run_start -
                                                        boot_start)
                  .count();
  r.run_ms =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_processes = env_size_t("PMCAST_SCALE_MAX", 1'100'000);
  // RSS is a process-wide high-water mark, so section A's fat single-group
  // rows would pollute section B's figures; --section B is how the
  // committed memory numbers are produced.
  std::string section;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-processes") == 0 && i + 1 < argc) {
      max_processes = static_cast<std::size_t>(std::stoull(argv[i + 1]));
      ++i;
    } else if (std::strcmp(argv[i], "--section") == 0 && i + 1 < argc) {
      section = argv[i + 1];
      ++i;
    }
  }
  bench::JsonWriter json(argc, argv, "table_scale");

  bench::print_header(
      "TAB-SCALE", "simulator scaling to 10^6 processes",
      "full SyncNode+PmcastNode stack per process; publish 4+4 per group; "
      "eps=0.02, R=2, pd=0.5, horizon 1.2s; rows capped at --max-processes " +
          std::to_string(max_processes));

  const SimTime horizon = sim_ms(1200);

  if (section.empty() || section == "A") {
    std::cout << "\nA. one group, growing capacity\n";
    Table t(kHeaders);
    const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
        {8, 2}, {8, 3}, {22, 3}};  // 128, 1024, 21296 processes
    for (const auto& [a, d] : shapes) {
      std::size_t n = 2;
      for (std::size_t i = 0; i < d; ++i) n *= a;
      if (n > max_processes) continue;
      report(t, run_single_group(a, d, horizon),
             "a=" + std::to_string(a) + ",d=" + std::to_string(d));
    }
    t.print(std::cout);
    json.add_table("A. one group, growing capacity", t.headers(), t.rows());
  }

  if (section.empty() || section == "B") {
    std::cout << "\nB. topic shards (32 processes each), one runtime per "
                 "shard\n";
    Table t(kHeaders);
    // The 100k row is the parallel yardstick: re-run it on 2 and 8 lanes.
    // The counters must not move a bit (the barrier engine is
    // byte-identical at any thread count); only run-ms may.
    constexpr std::size_t kParallelRowShards = 3125;
    for (const std::size_t shards : {32, 312, 3125, 31250}) {
      const std::size_t n = shards * 32;  // 1024, 9984, 100000, 1000000
      if (n > max_processes) continue;
      report(t, run_sharded(shards, horizon, 1),
             "shards=" + std::to_string(shards));
      if (shards == kParallelRowShards) {
        for (const std::size_t threads : {2, 8}) {
          report(t, run_sharded(shards, horizon, threads),
                 "shards=" + std::to_string(shards));
        }
      }
    }
    t.print(std::cout);
    json.add_table("B. topic shards, one runtime per shard", t.headers(),
                   t.rows());
  }

  json.write();

  std::cout << "\nExpected shape: ops/proc and msgs/proc stay flat as the\n"
               "population grows 1000x — per-process cost is constant, the\n"
               "paper's scalability claim — so total events scale linearly\n"
               "and wall-clock with them, never with queue depth (the\n"
               "calendar queue batches the period-aligned timer cohorts).\n"
               "B/proc should also stay flat: with interned addresses and\n"
               "struct-of-arrays view rows, per-process state is a few KB,\n"
               "which is what lets the 10^6 row fit in memory. The threaded\n"
               "100k rows repeat the same deployment on more lanes: every\n"
               "counter column is bit-identical, only run-ms drops (B/proc\n"
               "reads n/a there because the serial row already set the RSS\n"
               "high-water mark).\n";
  return 0;
}

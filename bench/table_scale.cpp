// TAB-SCALE — raw simulator scaling: how many processes one runtime hosts
// and how fast the hot loop runs them.
//
// The paper's pitch is that pmcast's per-process cost stays flat as the
// system grows; demonstrating that at fig4/fig6 scale needs a simulator
// whose scheduler and send path keep up at 10^5 processes. This bench is
// the yardstick for that engineering claim (the protocol-level shapes live
// in table_shards/fig6): every row boots a full dynamic-group deployment —
// SyncNode anti-entropy membership + PmcastNode dissemination per process —
// runs a publish workload for a fixed sim horizon, and reports raw engine
// throughput:
//
//   A. one group, growing capacity — stresses per-node view sizes and the
//      scheduler's same-time period cohorts within a single group;
//   B. topic shards of fixed size (a=4, d=2: 32 processes each), growing
//      the shard count to 1,000,000 processes on ONE runtime — the
//      deployment shape ShardedSim exists for.
//
// Columns: live processes, sim events executed, sched-ops/s, messages
// sent, msgs/s, wall-clock, peak RSS (getrusage ru_maxrss — a
// process-wide high-water mark, which is why rows run smallest to
// largest), and B/proc (peak RSS divided by process count — the
// machine-independent memory figure check_bench_json.py gates on).
// sched-ops/s here is end-to-end (event execution including protocol
// work), the deployment-shaped complement to the synthetic
// micro_benchmarks scheduler figure.
//
// `--max-processes N` skips rows larger than N (the perf-smoke CI job runs
// a small prefix); `--json <file>` writes the pmcast-bench-v1 schema —
// BENCH_scale.json in the repo root is a committed snapshot.
#ifndef _WIN32
#include <sys/resource.h>
#endif

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/shard.hpp"

namespace {

using namespace pmc;

double peak_rss_mb() {
#ifdef _WIN32
  return 0.0;  // no getrusage; the throughput columns still stand
#else
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is kilobytes on Linux, bytes on macOS; this bench targets
  // the Linux CI/dev boxes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

ScenarioScript publish_script() {
  ScenarioScript s;
  s.add(sim_ms(300), PublishBurst{4, sim_ms(40)});
  s.add(sim_ms(700), PublishBurst{4, sim_ms(40)});
  return s;
}

struct RowResult {
  std::size_t processes = 0;
  std::uint64_t sched_executed = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t delivered = 0;
  double boot_ms = 0.0;  ///< construction: trees, views, process spawn
  double run_ms = 0.0;   ///< the event loop itself
};

void report(Table& t, const RowResult& r, const std::string& label) {
  // Throughput is measured over the event loop alone; boot (tree and view
  // construction, process spawn) is reported separately so the hot-path
  // figure is not diluted by one-time setup.
  const double run_s = r.run_ms / 1000.0;
  const double procs = static_cast<double>(r.processes);
  t.add_row({label, Table::integer(r.processes),
             Table::integer(r.sched_executed),
             Table::num(static_cast<double>(r.sched_executed) / procs, 1),
             Table::num(run_s > 0 ? static_cast<double>(r.sched_executed) /
                                        run_s / 1e6
                                  : 0.0,
                        2),
             Table::integer(r.msgs_sent),
             Table::num(static_cast<double>(r.msgs_sent) / procs, 1),
             Table::num(run_s > 0 ? static_cast<double>(r.msgs_sent) /
                                        run_s / 1e6
                                  : 0.0,
                        2),
             Table::integer(r.delivered), Table::num(r.boot_ms, 1),
             Table::num(r.run_ms, 1), Table::num(peak_rss_mb(), 1),
             Table::num(peak_rss_mb() * 1024.0 * 1024.0 / procs, 1)});
}

const std::vector<std::string> kHeaders = {
    "row",       "processes", "sched ops", "ops/proc",  "Mops/s",
    "msgs sent", "msgs/proc", "Mmsg/s",    "delivered", "boot ms",
    "run ms",    "rss MB",    "B/proc"};

// One dynamic group of capacity a^d (2 protocol nodes per address).
RowResult run_single_group(std::size_t a, std::size_t d, SimTime horizon) {
  ChurnConfig cfg;
  cfg.a = a;
  cfg.d = d;
  cfg.r = 2;
  cfg.pd = 0.5;
  cfg.initial_fill = 0.8;
  cfg.loss = 0.02;
  cfg.seed = 2027;

  const auto boot_start = std::chrono::steady_clock::now();
  ChurnSim sim(cfg);
  sim.play(publish_script());
  const auto run_start = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const auto run_end = std::chrono::steady_clock::now();
  const auto summary = sim.summary();
  RowResult r;
  r.processes = 2 * cfg.capacity();
  r.sched_executed = summary.scheduler_executed;
  r.msgs_sent = summary.network.sent;
  r.delivered = summary.counters.delivered;
  r.boot_ms = std::chrono::duration<double, std::milli>(run_start -
                                                        boot_start)
                  .count();
  r.run_ms =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  return r;
}

// K topic shards of 16 addresses each (a=4, d=2) on one runtime.
RowResult run_sharded(std::size_t shards, SimTime horizon) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.shard.a = 4;
  cfg.shard.d = 2;
  cfg.shard.r = 2;
  cfg.shard.pd = 0.5;
  cfg.shard.initial_fill = 0.8;
  cfg.shard.loss = 0.02;
  cfg.shard.seed = 2027;

  const auto boot_start = std::chrono::steady_clock::now();
  ShardedSim sim(cfg);
  sim.play_all(publish_script());
  const auto run_start = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const auto run_end = std::chrono::steady_clock::now();
  const auto summary = sim.summary();
  RowResult r;
  r.processes = 2 * cfg.total_capacity();
  r.sched_executed = summary.scheduler_executed;
  r.msgs_sent = summary.network.sent;
  r.delivered = summary.aggregate.counters.delivered;
  r.boot_ms = std::chrono::duration<double, std::milli>(run_start -
                                                        boot_start)
                  .count();
  r.run_ms =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_processes = env_size_t("PMCAST_SCALE_MAX", 1'100'000);
  // RSS is a process-wide high-water mark, so section A's fat single-group
  // rows would pollute section B's figures; --section B is how the
  // committed memory numbers are produced.
  std::string section;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-processes") == 0 && i + 1 < argc) {
      max_processes = static_cast<std::size_t>(std::stoull(argv[i + 1]));
      ++i;
    } else if (std::strcmp(argv[i], "--section") == 0 && i + 1 < argc) {
      section = argv[i + 1];
      ++i;
    }
  }
  bench::JsonWriter json(argc, argv, "table_scale");

  bench::print_header(
      "TAB-SCALE", "simulator scaling to 10^6 processes",
      "full SyncNode+PmcastNode stack per process; publish 4+4 per group; "
      "eps=0.02, R=2, pd=0.5, horizon 1.2s; rows capped at --max-processes " +
          std::to_string(max_processes));

  const SimTime horizon = sim_ms(1200);

  if (section.empty() || section == "A") {
    std::cout << "\nA. one group, growing capacity\n";
    Table t(kHeaders);
    const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
        {8, 2}, {8, 3}, {22, 3}};  // 128, 1024, 21296 processes
    for (const auto& [a, d] : shapes) {
      std::size_t n = 2;
      for (std::size_t i = 0; i < d; ++i) n *= a;
      if (n > max_processes) continue;
      report(t, run_single_group(a, d, horizon),
             "a=" + std::to_string(a) + ",d=" + std::to_string(d));
    }
    t.print(std::cout);
    json.add_table("A. one group, growing capacity", t.headers(), t.rows());
  }

  if (section.empty() || section == "B") {
    std::cout << "\nB. topic shards (32 processes each) on one runtime\n";
    Table t(kHeaders);
    for (const std::size_t shards : {32, 312, 3125, 31250}) {
      const std::size_t n = shards * 32;  // 1024, 9984, 100000, 1000000
      if (n > max_processes) continue;
      report(t, run_sharded(shards, horizon),
             "shards=" + std::to_string(shards));
    }
    t.print(std::cout);
    json.add_table("B. topic shards on one runtime", t.headers(), t.rows());
  }

  json.write();

  std::cout << "\nExpected shape: ops/proc and msgs/proc stay flat as the\n"
               "population grows 1000x — per-process cost is constant, the\n"
               "paper's scalability claim — so total events scale linearly\n"
               "and wall-clock with them, never with queue depth (the\n"
               "calendar queue batches the period-aligned timer cohorts).\n"
               "B/proc should also stay flat: with interned addresses and\n"
               "struct-of-arrays view rows, per-process state is a few KB,\n"
               "which is what lets the 10^6 row fit in one runtime.\n";
  return 0;
}

// FIG5 — paper Figure 5: "Infected Uninterested Processes".
// Probability that a process NOT interested in a multicast event still
// receives it, vs the fraction of interested processes p_d. Same
// configuration as Figure 4: n ≈ 10000 (a = 22), d = 3, R = 3, F = 2.
//
// In pmcast only delegates "purely forward" events for subgroups they
// represent, so this probability stays low (the paper plots ≈ 0–0.12),
// peaking at intermediate p_d — at tiny p_d few subgroups are infected at
// all, at p_d = 1 there is nobody uninterested.
#include "bench_common.hpp"

int main() {
  using namespace pmc;
  const std::size_t runs = bench::runs_per_point(15);
  bench::print_header(
      "FIG5", "Probability of reception for uninterested processes vs p_d",
      "n=10648 (a=22, d=3), R=3, F=2, eps=0.05, runs/point=" +
          std::to_string(runs));

  Table table({"p_d", "reception(sim)", "delegates(frac)"});
  // The fraction of processes that are delegates at some inner depth bounds
  // the achievable false reception: R*a^2 / a^3 = R/a.
  const double delegate_fraction = 3.0 / 22.0;
  for (const double pd : {0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6,
                          0.7, 0.8, 0.9, 1.0}) {
    ExperimentConfig config;
    config.a = 22;
    config.d = 3;
    config.r = 3;
    config.fanout = 2;
    config.pd = pd;
    config.loss = 0.05;
    config.runs = runs;
    config.seed = 43;
    const auto sim = run_pmcast_experiment(config);
    table.add_row({Table::num(pd, 2), bench::pm(sim.false_reception),
                   Table::num(delegate_fraction, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: low everywhere (only forwarding delegates are"
               " hit), peaking at intermediate p_d, 0 at p_d = 1.\n";
  return 0;
}

// TAB-VIEWS — the membership-scalability claim of paper Sec. 2.2/4.3
// (Eqs. 2 and 12): in a regular tree every process knows only
// m = R*a*(d-1) + a processes, i.e. O(d R n^(1/d)) — versus n-1 under the
// global-membership assumption of gossip broadcast. We compare the formula
// with the *measured* size of materialized views from a real GroupTree.
#include "bench_common.hpp"

#include "analysis/tree_analysis.hpp"
#include "membership/tree.hpp"

int main(int argc, char** argv) {
  using namespace pmc;
  bench::JsonWriter json(argc, argv, "table_view_sizes");
  bench::print_header(
      "TAB-VIEWS", "Per-process membership knowledge m vs group size",
      "m = R*a*(d-1) + a (Eq. 2/12); measured = rows of a materialized view");

  struct Case {
    std::size_t a, d, r;
  };
  const Case cases[] = {
      {10, 2, 3}, {22, 2, 3}, {5, 3, 3},  {10, 3, 3}, {22, 3, 3},
      {22, 3, 4}, {10, 4, 3}, {6, 5, 3},  {100, 2, 3}, {4, 6, 2},
  };

  Table table({"a", "d", "R", "n=a^d", "m(formula)", "m(measured)",
               "m/n", "flat(n-1)"});
  for (const auto& c : cases) {
    std::size_t n = 1;
    for (std::size_t i = 0; i < c.d; ++i) n *= c.a;

    std::size_t measured = 0;
    if (n <= 20000) {
      Rng rng(7);
      const auto members = uniform_interest_members(
          AddressSpace::regular(static_cast<AddrComponent>(c.a), c.d), 0.5,
          rng);
      TreeConfig tc;
      tc.depth = c.d;
      tc.redundancy = c.r;
      Interns interns;
      const GroupTree tree(tc, members, interns);
      measured =
          tree.materialize_view(members[n / 2].address).known_processes();
    }

    const std::size_t formula = regular_view_size(c.a, c.d, c.r);
    table.add_row({Table::integer(c.a), Table::integer(c.d),
                   Table::integer(c.r), Table::integer(n),
                   Table::integer(formula),
                   n <= 20000 ? Table::integer(measured) : "(skipped)",
                   Table::num(static_cast<double>(formula) /
                                  static_cast<double>(n),
                              4),
                   Table::integer(n - 1)});
  }
  table.print(std::cout);
  json.add_table("view sizes", table.headers(), table.rows());
  json.write();
  std::cout << "\nShape check: m grows like n^(1/d), a vanishing fraction of"
               " the flat-membership cost n-1.\n";
  return 0;
}

// Stock ticker: the content-based publish/subscribe workload that motivates
// the paper (think of the Swiss Exchange system its introduction cites).
//
// 512 trader processes in an 8x8x8 tree subscribe to quotes by symbol and
// price band, e.g. 'symbol == "NOVN" && price > 55.0'. An exchange feed
// publishes a stream of quotes; pmcast routes each quote to the traders
// whose filters match, without flooding the rest of the group. The example
// prints per-symbol delivery statistics and the bandwidth split.
#include <iostream>
#include <map>

#include "filter/index.hpp"
#include "pmcast/pmcast.hpp"

int main() {
  using namespace pmc;

  const char* symbols[] = {"NOVN", "NESN", "UBSG", "ROG"};
  const double base_price[] = {90.0, 110.0, 25.0, 270.0};

  // 512 traders; each watches one symbol above a personal price threshold.
  const auto space = AddressSpace::regular(8, 3);
  Rng rng(7);
  std::vector<Member> members;
  for (const auto& address : space.enumerate()) {
    const std::size_t s = rng.next_below(4);
    const double threshold = base_price[s] * (0.9 + 0.2 * rng.next_double());
    auto predicate = Predicate::conj(
        {Predicate::compare("symbol", CmpOp::Eq, Value(symbols[s])),
         Predicate::compare("price", CmpOp::Gt, Value(threshold))});
    members.push_back(Member{address, Subscription(std::move(predicate))});
  }

  TreeConfig tree_config;
  tree_config.depth = 3;
  tree_config.redundancy = 3;
  Interns interns;
  GroupTree tree(tree_config, members, interns);
  const TreeViewProvider views(tree);

  NetworkConfig net;
  net.loss_probability = 0.02;
  Runtime runtime(net, 99);

  std::vector<ProcessId> directory;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns.addrs.intern(members[i].address);
    if (directory.size() <= id) directory.resize(id + 1, kNoProcess);
    directory[id] = static_cast<ProcessId>(i);
  }
  const auto lookup = [&directory](AddrId id) {
    return id < directory.size() ? directory[id] : kNoProcess;
  };

  PmcastConfig config;
  config.tree = tree_config;
  config.fanout = 3;

  std::map<std::string, std::size_t> deliveries;
  std::vector<std::unique_ptr<PmcastNode>> nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    nodes.push_back(std::make_unique<PmcastNode>(
        runtime, static_cast<ProcessId>(i), config, members[i].address,
        members[i].subscription, views, lookup));
    nodes.back()->set_deliver_handler([&deliveries](const Event& e) {
      ++deliveries[e.get("symbol")->as_string()];
    });
  }

  // The exchange's view of who is interested goes through the predicate
  // index (the same structure a broker front-end would use at audience
  // scale), cross-checked every quote against the naive Predicate::match
  // scan — the two must agree exactly or the example fails.
  SubscriptionMatcher audience(MatcherKind::IndexLanes);
  for (std::size_t i = 0; i < members.size(); ++i)
    audience.add(static_cast<SubscriptionId>(i), members[i].subscription);

  // The exchange feed: 40 quotes with prices wandering around the base.
  std::cout << "Publishing 40 quotes across " << members.size()
            << " traders...\n";
  std::map<std::string, std::size_t> interested_totals;
  std::vector<SubscriptionId> interested;
  for (std::uint64_t seq = 0; seq < 40; ++seq) {
    const std::size_t s = rng.next_below(4);
    const double price = base_price[s] * (0.85 + 0.3 * rng.next_double());
    Event quote(EventId{/*publisher=*/0, seq});
    quote.with("symbol", symbols[s]).with("price", price)
         .with("volume", static_cast<std::int64_t>(rng.next_below(10000)));
    audience.match(quote, interested);
    std::size_t naive_interested = 0;
    for (const auto& m : members)
      if (m.subscription.match(quote)) ++naive_interested;
    if (interested.size() != naive_interested) {
      std::cerr << "FAIL: predicate index found " << interested.size()
                << " interested traders, naive scan found "
                << naive_interested << " (quote " << seq << ")\n";
      return 1;
    }
    interested_totals[symbols[s]] += interested.size();
    nodes[rng.next_below(nodes.size())]->pmcast(quote);
    runtime.run_until_idle();
  }

  std::cout << "\nsymbol  delivered  interested  ratio\n";
  for (const auto& [symbol, interested] : interested_totals) {
    const auto delivered = deliveries[symbol];
    std::cout << symbol << "  " << delivered << "  " << interested << "  "
              << (interested ? static_cast<double>(delivered) /
                                   static_cast<double>(interested)
                             : 1.0)
              << "\n";
  }
  std::cout << "\nTotal gossip messages: "
            << runtime.network().counters().sent
            << " (a broadcast would have sent >= "
            << 40 * (members.size() - 1) << " deliveries alone)\n";
  return 0;
}

// Full deployment-style stack: every process runs the membership protocol
// (SyncNode) *and* the dissemination protocol (PmcastNode) with
//   * pmcast views served live from the anti-entropy membership,
//   * membership rows piggybacked on event gossip (paper Sec. 2.3),
//   * every message serialized through the wire codec, as a socket
//     deployment would do.
// A process then crashes; failure detection tombstones it, the tombstone
// spreads (partly by riding on events), and dissemination keeps working.
#include <iostream>

#include "harness/workload.hpp"
#include "pmcast/pmcast.hpp"
#include "wire/messages.hpp"

int main() {
  using namespace pmc;

  const auto space = AddressSpace::regular(4, 2);
  Rng rng(11);
  const auto members = uniform_interest_members(space, 0.7, rng);
  TreeConfig tree_config;
  tree_config.depth = 2;
  tree_config.redundancy = 2;
  Interns interns;
  const GroupTree tree(tree_config, members, interns);

  Runtime runtime(NetworkConfig{.loss_probability = 0.02,
                                .latency_min = sim_us(100),
                                .latency_max = sim_us(900)},
                  2026);
  // Deployment realism: every message crosses the wire codec.
  runtime.network().set_transcoder([](const MessagePtr& msg) {
    return wire::decode_message(wire::encode_message(*msg));
  });

  // Directories: sync processes at pid i, pmcast processes at pid i+100,
  // both as dense AddrId-indexed vectors.
  std::vector<ProcessId> sync_dir, pm_dir;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns.addrs.intern(members[i].address);
    if (sync_dir.size() <= id) {
      sync_dir.resize(id + 1, kNoProcess);
      pm_dir.resize(id + 1, kNoProcess);
    }
    sync_dir[id] = static_cast<ProcessId>(i);
    pm_dir[id] = static_cast<ProcessId>(i + 100);
  }

  SyncConfig sync_config;
  sync_config.tree = tree_config;
  sync_config.gossip_period = sim_ms(100);
  sync_config.suspicion_timeout = sim_ms(800);
  sync_config.confirm_suspicion = true;  // agreement before exclusion

  std::vector<std::unique_ptr<SyncNode>> sync_nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    sync_nodes.push_back(std::make_unique<SyncNode>(
        runtime, static_cast<ProcessId>(i), sync_config,
        tree.materialize_view(members[i].address),
        members[i].subscription));
    sync_nodes.back()->set_directory([&sync_dir](AddrId id) {
      return id < sync_dir.size() ? sync_dir[id] : kNoProcess;
    });
  }

  PmcastConfig pm_config;
  pm_config.tree = tree_config;
  pm_config.fanout = 3;
  pm_config.recovery_rounds = 3;  // digest recovery on

  std::size_t delivered = 0;
  std::vector<std::unique_ptr<LocalViewProvider>> providers;
  std::vector<std::unique_ptr<PmcastNode>> pm_nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    providers.push_back(
        std::make_unique<LocalViewProvider>(sync_nodes[i]->view()));
    pm_nodes.push_back(std::make_unique<PmcastNode>(
        runtime, static_cast<ProcessId>(i + 100), pm_config,
        members[i].address, members[i].subscription, *providers[i],
        [&pm_dir](AddrId id) {
          return id < pm_dir.size() ? pm_dir[id] : kNoProcess;
        }));
    pm_nodes.back()->set_deliver_handler(
        [&delivered](const Event&) { ++delivered; });
    SyncNode* sync = sync_nodes[i].get();
    pm_nodes.back()->set_piggyback(
        [sync](AddrId target) { return sync->rows_to_share(target); },
        [sync](const Address& sender, const std::vector<DepthRow>& rows) {
          sync->absorb_rows(sender, rows);
        });
  }

  std::cout << members.size() << " processes, wire codec + piggybacking +"
            << " digest recovery active\n\n";

  runtime.run_for(sim_ms(500));  // membership settles

  std::cout << "Publishing 10 events...\n";
  for (std::uint64_t s = 0; s < 10; ++s) {
    Rng ev_rng(100 + s);
    pm_nodes[s % pm_nodes.size()]->pmcast(
        make_uniform_event(s % pm_nodes.size(), s, ev_rng));
    runtime.run_for(sim_ms(300));
  }
  runtime.run_for(sim_ms(3000));
  std::cout << "  deliveries so far: " << delivered << "\n";

  std::cout << "\nCrashing 2.1; failure detection (with confirmation) "
               "tombstones it...\n";
  const auto victim = sync_dir.at(interns.addrs.find(Address::parse("2.1")));
  sync_nodes[victim]->crash();
  pm_nodes[victim]->crash();
  runtime.run_for(sim_ms(4000));
  std::size_t aware = 0;
  for (const auto& n : sync_nodes) {
    if (!n->alive() || n->address().component(0) != 2) continue;
    const auto& leaf = n->view().view(2);
    const std::size_t row = leaf.find_index(1);
    if (row != DepthView::npos && !leaf.alive(row)) ++aware;
  }
  std::cout << "  leaf neighbors aware of the crash: " << aware << "/3\n";

  std::cout << "\nPublishing 5 more events after the crash...\n";
  const auto before = delivered;
  for (std::uint64_t s = 10; s < 15; ++s) {
    Rng ev_rng(100 + s);
    pm_nodes[(s * 3) % pm_nodes.size()]->pmcast(
        make_uniform_event((s * 3) % pm_nodes.size(), s, ev_rng));
    runtime.run_for(sim_ms(300));
  }
  runtime.run_for(sim_ms(3000));
  std::cout << "  post-crash deliveries: " << (delivered - before) << "\n";

  const auto& counters = runtime.network().counters();
  std::cout << "\nTraffic: " << counters.sent << " messages ("
            << counters.lost << " lost to the 2% loss, "
            << counters.dead_target << " to crashed targets)\n";
  return 0;
}

// Adaptive environment estimation: a dynamic group rides through a loss
// burst while every node infers ε online from digest feedback (sent vs.
// acked anti-entropy probes) and τ from observed view churn, re-tuning the
// Eq. 11 gossip-round bound live instead of trusting the frozen
// configuration-time estimate.
//
// The run prints the live mean ε̂ before, during and after the burst — it
// climbs from the 0.02 base rate towards the burst's 0.45 and decays back —
// next to a static twin of the same timeline for the delivery comparison.
// Estimation is pure counter arithmetic (no RNG), so the adaptive run is
// replayed at the end and must produce a byte-identical summary; the
// process exits non-zero if it does not.
#include <iostream>

#include "harness/scenario.hpp"

int main() {
  using namespace pmc;

  ChurnConfig config;
  config.a = 4;
  config.d = 2;
  config.r = 2;
  config.pd = 0.5;
  config.initial_fill = 0.8;
  config.loss = 0.02;  // calm-weather ε: also the static/prior estimate
  config.period = sim_ms(50);
  config.seed = 21;
  config.adaptive = true;

  ScenarioScript script;
  script.add(sim_ms(400), LossBurst{0.45, sim_ms(1600)});  // the storm
  script.add(sim_ms(1400), PublishBurst{8, sim_ms(30)});   // mid-burst
  script.add(sim_ms(2400), PublishBurst{8, sim_ms(30)});   // after it

  std::cout << "Adaptive eps/tau estimation over a loss burst "
               "(base eps=0.02, burst eps=0.45):\n"
            << script.to_string() << "\n";

  ChurnSim sim(config);
  sim.play(script);
  const auto phase = [&](SimTime until, const char* label) {
    sim.run_until(until);
    const auto g = sim.group_summary();
    std::cout << "t=" << sim.now() / sim_ms(1) << "ms  " << label
              << "\n  mean eps-hat "
              << static_cast<double>(g.env_loss_ppm) / 1e6 << ", tau-hat "
              << static_cast<double>(g.env_crash_ppm) / 1e6 << " ("
              << g.env_windows << " estimator windows), delivered "
              << g.counters.delivered << "\n";
  };
  phase(sim_ms(390), "calm: estimate sits at the prior");
  phase(sim_ms(1400), "one second into the burst: eps-hat has climbed");
  phase(sim_ms(2300), "burst over: estimate decaying back");
  phase(sim_ms(3200), "final publishes done");

  const ChurnSummary adaptive = sim.summary();

  // Static twin: same seed, same timeline, frozen env estimate.
  ChurnConfig static_config = config;
  static_config.adaptive = false;
  ChurnSim static_sim(static_config);
  static_sim.play(script);
  static_sim.run_until(sim_ms(3200));
  const ChurnSummary frozen = static_sim.summary();

  std::cout << "\nDelivered events (16 published), static estimate: "
            << frozen.counters.delivered
            << "  vs adaptive: " << adaptive.counters.delivered << "\n";

  // Replay: the estimator must not cost determinism.
  ChurnSim replay(config);
  replay.play(script);
  replay.run_until(sim_ms(3200));
  const bool identical = replay.summary() == adaptive;
  std::cout << "\nReplay with the same seed: "
            << (identical ? "identical summary (deterministic)"
                          : "MISMATCH — determinism bug!")
            << "\n";
  return identical ? 0 : 1;
}

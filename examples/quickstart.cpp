// Quickstart: the smallest complete pmcast program.
//
// Nine processes in a 3x3 tree subscribe to ranges of an integer attribute
// "b"; one process multicasts two events, and only matching subscribers
// deliver them. Walks through the full public API:
//   AddressSpace/Member -> GroupTree -> Runtime -> PmcastNode -> pmcast().
#include <iostream>

#include "pmcast/pmcast.hpp"

int main() {
  using namespace pmc;

  // 1. A regular address space: depth 2, three subgroups of three.
  const auto space = AddressSpace::regular(3, 2);

  // 2. Members with content-based subscriptions (textual interest language).
  std::vector<Member> members;
  const char* interests[] = {
      "b < 10",           "b >= 10 && b < 20", "b >= 20",
      "b == 15",          "true",              "b > 5 && b < 25",
      "e == \"alert\"",   "b >= 20 || b < 5",  "false",
  };
  std::size_t idx = 0;
  for (const auto& address : space.enumerate())
    members.push_back(Member{address, Subscription::parse(interests[idx++])});

  // 3. The membership tree: every subgroup elects R = 2 delegates.
  TreeConfig tree_config;
  tree_config.depth = 2;
  tree_config.redundancy = 2;
  Interns interns;
  GroupTree tree(tree_config, members, interns);
  const TreeViewProvider views(tree);

  // 4. Simulation runtime with 5% message loss.
  NetworkConfig net;
  net.loss_probability = 0.05;
  Runtime runtime(net, /*seed=*/2024);

  // 5. One pmcast node per process; the directory resolves interned
  //    address ids to simulated process ids.
  std::vector<ProcessId> directory;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns.addrs.intern(members[i].address);
    if (directory.size() <= id) directory.resize(id + 1, kNoProcess);
    directory[id] = static_cast<ProcessId>(i);
  }
  const auto lookup = [&directory](AddrId id) {
    return id < directory.size() ? directory[id] : kNoProcess;
  };

  PmcastConfig config;
  config.tree = tree_config;
  config.fanout = 3;

  std::vector<std::unique_ptr<PmcastNode>> nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    nodes.push_back(std::make_unique<PmcastNode>(
        runtime, static_cast<ProcessId>(i), config, members[i].address,
        members[i].subscription, views, lookup));
    nodes.back()->set_deliver_handler([i, &members](const Event& e) {
      std::cout << "  " << members[i].address.to_string() << " delivered "
                << e.to_string() << "\n";
    });
  }

  // 6. Multicast. Only interested processes deliver; uninterested ones are
  //    (with high probability) never even contacted.
  Event fifteen(EventId{0, 1});
  fifteen.with("b", 15);
  std::cout << "Publishing " << fifteen.to_string() << ":\n";
  nodes[0]->pmcast(fifteen);
  runtime.run_until_idle();

  Event alert(EventId{0, 2});
  alert.with("b", 3).with("e", "alert");
  std::cout << "Publishing " << alert.to_string() << ":\n";
  nodes[4]->pmcast(alert);
  runtime.run_until_idle();

  std::cout << "Messages on the wire: "
            << runtime.network().counters().sent << " sent, "
            << runtime.network().counters().lost << " lost to the 5% loss\n";
  return 0;
}

// Churn: the decentralized membership layer (Sec. 2.3) under joins, a
// graceful leave and a crash — no global coordinator, only gossip-pull
// anti-entropy between SyncNodes.
//
// A 4x4 group starts with one address vacant. The example:
//   1. lets the founders' views converge,
//   2. joins the missing process through a distant contact,
//   3. gracefully leaves one process,
//   4. crashes another and waits for failure detection to tombstone it,
// printing the membership each phase as seen by an observer process.
#include <iostream>

#include "harness/workload.hpp"
#include "pmcast/pmcast.hpp"

namespace {

void print_membership(const pmc::SyncNode& observer) {
  using namespace pmc;
  const auto& view = observer.view();
  std::cout << "  as seen by " << observer.address().to_string() << ": ";
  for (std::size_t depth = 1; depth <= view.config().depth; ++depth) {
    std::cout << "depth" << depth << "=" << view.view(depth).live_count()
              << "/" << view.view(depth).size() << " rows  ";
  }
  std::cout << "(knows " << view.known_processes() << " processes)\n";
}

}  // namespace

int main() {
  using namespace pmc;

  const Address vacant = Address::parse("3.3");
  const auto space = AddressSpace::regular(4, 2);
  Rng rng(3);
  std::vector<Member> members;
  for (auto& m : uniform_interest_members(space, 0.5, rng)) {
    if (m.address == vacant) continue;
    members.push_back(std::move(m));
  }

  SyncConfig config;
  config.tree.depth = 2;
  config.tree.redundancy = 2;
  config.gossip_period = sim_ms(50);
  config.gossip_fanout = 2;
  config.suspicion_timeout = sim_ms(500);

  GroupTree tree(config.tree, members);
  Runtime runtime(NetworkConfig{}, 31);

  std::unordered_map<Address, ProcessId, AddressHash> directory;
  for (std::size_t i = 0; i < members.size(); ++i)
    directory.emplace(members[i].address, static_cast<ProcessId>(i));
  const ProcessId joiner_pid = static_cast<ProcessId>(members.size());
  directory.emplace(vacant, joiner_pid);
  const auto lookup = [&directory](const Address& a) {
    const auto it = directory.find(a);
    return it == directory.end() ? kNoProcess : it->second;
  };

  std::vector<std::unique_ptr<SyncNode>> nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    nodes.push_back(std::make_unique<SyncNode>(
        runtime, static_cast<ProcessId>(i), config,
        tree.materialize_view(members[i].address),
        members[i].subscription));
    nodes.back()->set_directory(lookup);
  }
  const auto& observer = *nodes[5];  // process 1.1 watches the group

  std::cout << "Phase 1 — " << members.size() << " founders converge:\n";
  runtime.run_for(sim_ms(400));
  print_membership(observer);

  std::cout << "\nPhase 2 — " << vacant.to_string()
            << " joins via contact 0.0:\n";
  SyncNode joiner(runtime, joiner_pid, config, vacant,
                  Subscription::parse("u < 0.4"), /*contact=*/0);
  joiner.set_directory(lookup);
  runtime.run_for(sim_ms(1000));
  std::cout << "  joiner joined: " << (joiner.joined() ? "yes" : "no")
            << "\n";
  print_membership(joiner);

  std::cout << "\nPhase 3 — 2.1 leaves gracefully:\n";
  nodes[9]->leave();  // address 2.1
  runtime.run_for(sim_ms(1000));
  print_membership(observer);

  std::cout << "\nPhase 4 — 0.2 crashes; failure detection kicks in:\n";
  nodes[2]->crash();  // address 0.2
  runtime.run_for(sim_ms(3000));
  // Its leaf neighbors should have tombstoned it.
  const auto& neighbor = *nodes[0];  // 0.0 shares the leaf subgroup
  const auto* row = neighbor.view().view(2).find(2);
  std::cout << "  0.0's view of 0.2: "
            << (row == nullptr ? "unknown"
                               : (row->alive ? "alive (not yet detected)"
                                             : "tombstoned"))
            << "\n";
  print_membership(observer);

  std::cout << "\nAnti-entropy traffic: "
            << runtime.network().counters().sent << " messages over "
            << runtime.now() / sim_ms(1) << " ms simulated\n";
  return 0;
}

// Churn: the scenario engine driving a dynamic group through the canonical
// stress timeline — staggered joins, a crash burst, a partition that heals,
// a loss spike, recoveries, a graceful leave and publish bursts throughout.
//
// Every live process runs the full stack (SyncNode anti-entropy membership
// feeding a PmcastNode, with membership rows piggybacked on event gossip).
// The same script and seed are then replayed on a second engine instance to
// demonstrate the engine's reproducibility promise: byte-identical
// summaries, fingerprint included.
#include <iostream>

#include "harness/scenario.hpp"

int main() {
  using namespace pmc;

  ChurnConfig config;
  config.a = 4;
  config.d = 2;
  config.r = 2;
  config.pd = 0.5;
  config.initial_fill = 0.75;  // 12 of 16 addresses founded, 4 vacant
  config.loss = 0.02;
  config.period = sim_ms(50);
  config.suspicion_timeout = sim_ms(500);
  config.seed = 7;

  const ScenarioScript script = ScenarioScript::demo();
  std::cout << "Scenario (" << script.size() << " actions):\n"
            << script.to_string() << "\n";

  ChurnSim sim(config);
  std::cout << "Founders: " << sim.live_count() << " of "
            << config.capacity() << " addresses\n\n";
  sim.play(script);

  const auto phase = [&](SimTime until, const char* label) {
    sim.run_until(until);
    std::cout << "t=" << sim.now() / sim_ms(1) << "ms  " << label << "\n  "
              << "live " << sim.live_count() << ", joined "
              << sim.joined_count() << ", crashes "
              << sim.counters().crashes << ", recoveries "
              << sim.counters().recoveries << ", published "
              << sim.counters().published << ", delivered "
              << sim.counters().delivered << "\n";
  };
  phase(sim_ms(500), "after the staggered joins");
  phase(sim_ms(1100), "crash burst hit; partition 0,1 | 2,3 active");
  phase(sim_ms(1900), "loss spike passed, partition healed");
  phase(sim_ms(3500), "recoveries, leave and final publishes done");

  const ChurnSummary summary = sim.summary();
  std::cout << "\nSummary:\n  " << summary.to_string() << "\n";

  // Replay: same config, same script, fresh engine.
  ChurnSim replay(config);
  replay.play(script);
  replay.run_until(sim_ms(3500));
  const bool identical = replay.summary() == summary;
  std::cout << "\nReplay with the same seed: "
            << (identical ? "identical summary (deterministic)"
                          : "MISMATCH — determinism bug!")
            << "\n";
  return identical ? 0 : 1;
}

// Sensor grid: interests correlated with network locality — the favourable
// case for pmcast's tree (subgroups map to subnetworks, and nearby monitors
// care about nearby sensors).
//
// A 6x6x6 deployment: each leaf subgroup is a building floor whose monitors
// subscribe to temperature alarms for their own zone (plus a few roaming
// supervisors with wildcard interests). Alarms for one zone stay almost
// entirely inside that subtree: the example contrasts messages per zone
// alarm against a group-wide alarm.
#include <iostream>

#include "pmcast/pmcast.hpp"

int main() {
  using namespace pmc;

  const std::size_t kA = 6;
  const auto space =
      AddressSpace::regular(static_cast<AddrComponent>(kA), 3);
  Rng rng(12);

  // Zone id = index of the leaf subgroup (building floor).
  std::vector<Member> members;
  std::size_t supervisors = 0;
  for (const auto& address : space.enumerate()) {
    const std::size_t zone =
        address.component(0) * kA + address.component(1);
    if (rng.next_below(50) == 0) {
      // Roaming supervisor: sees every critical alarm anywhere.
      members.push_back(
          Member{address, Subscription::parse("severity >= 2")});
      ++supervisors;
    } else {
      members.push_back(Member{
          address, Subscription::parse(
                       "zone == " + std::to_string(zone) +
                       " && temperature > 45.0")});
    }
  }

  TreeConfig tree_config;
  tree_config.depth = 3;
  tree_config.redundancy = 3;
  Interns interns;
  GroupTree tree(tree_config, members, interns);
  const TreeViewProvider views(tree);

  Runtime runtime(NetworkConfig{}, 5);
  std::vector<ProcessId> directory;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns.addrs.intern(members[i].address);
    if (directory.size() <= id) directory.resize(id + 1, kNoProcess);
    directory[id] = static_cast<ProcessId>(i);
  }
  const auto lookup = [&directory](AddrId id) {
    return id < directory.size() ? directory[id] : kNoProcess;
  };

  PmcastConfig config;
  config.tree = tree_config;
  config.fanout = 3;

  std::size_t delivered = 0;
  std::vector<std::unique_ptr<PmcastNode>> nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    nodes.push_back(std::make_unique<PmcastNode>(
        runtime, static_cast<ProcessId>(i), config, members[i].address,
        members[i].subscription, views, lookup));
    nodes.back()->set_deliver_handler(
        [&delivered](const Event&) { ++delivered; });
  }

  std::cout << members.size() << " sensors/monitors, " << supervisors
            << " roaming supervisors\n\n";

  // Zone-local alarm: only floor 7's monitors (and supervisors) care.
  Event local_alarm(EventId{1, 1});
  local_alarm.with("zone", 7).with("temperature", 51.5).with("severity", 1);
  runtime.network().reset_counters();
  delivered = 0;
  nodes[0]->pmcast(local_alarm);
  runtime.run_until_idle();
  const auto local_msgs = runtime.network().counters().sent;
  std::cout << "Zone-7 alarm:   " << delivered << " deliveries, "
            << local_msgs << " messages\n";

  // Group-wide critical alarm: everyone with severity filters + every zone
  // monitor whose zone matches... here zone 20 + severity 2 reaches zone
  // monitors of zone 20 and all supervisors.
  Event critical(EventId{1, 2});
  critical.with("zone", 20).with("temperature", 63.0).with("severity", 3);
  runtime.network().reset_counters();
  delivered = 0;
  nodes[100]->pmcast(critical);
  runtime.run_until_idle();
  std::cout << "Critical alarm: " << delivered << " deliveries, "
            << runtime.network().counters().sent << " messages\n";

  std::cout << "\nLocality: a zone alarm touches one subtree (plus the"
               " root delegates), so its message count stays a small"
               " fraction of the " << members.size() << "-process group.\n";
  return 0;
}

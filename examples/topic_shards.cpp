// Topic shards: four independent pmcast groups hosted on ONE simulated
// runtime, each running the full membership + dissemination stack, with
// cross-shard publishers whose events enter several shards through the
// shard router — the multi-group deployment shape behind the "millions of
// users" north star.
//
// The demo then proves the two properties the sharded runtime is built
// around:
//   1. reproducibility — replaying the same config and scripts yields
//      byte-identical per-shard and aggregate summaries;
//   2. isolation — adding a churn action to shard 0's script leaves every
//      other shard's summary byte-identical, even though all shards share
//      the network, the scheduler and the wall-clock.
#include <iostream>

#include "harness/shard.hpp"

int main() {
  using namespace pmc;

  ShardedConfig config;
  config.shards = 4;
  config.shard.a = 4;
  config.shard.d = 2;
  config.shard.r = 2;
  config.shard.pd = 0.5;
  config.shard.initial_fill = 0.75;  // 12 of 16 addresses per shard
  config.shard.loss = 0.02;
  config.shard.period = sim_ms(50);
  config.shard.seed = 7;
  config.cross.publishers = 2;  // publisher p spans shards {p, p+1, p+2}
  config.cross.span = 3;
  config.cross.events = 5;
  config.cross.start = sim_ms(400);
  config.cross.spacing = sim_ms(150);

  // Every shard gets the same base script (its salted streams make it
  // unfold differently per shard); shard 2 additionally rides through a
  // partition of its own.
  ScenarioScript base;
  base.add(sim_ms(250), Join{1});
  base.add(sim_ms(600), PublishBurst{3, sim_ms(30)});
  base.add(sim_ms(900), CrashNodes{1});
  base.add(sim_ms(1300), PublishBurst{3, sim_ms(30)});
  ScenarioScript split;
  split.add(sim_ms(700), Partition{{0, 1}, sim_ms(1500)});

  const auto run = [&](bool extra_churn_in_shard0) {
    ShardedSim sim(config);
    sim.play_all(base);
    sim.play(2, split);
    if (extra_churn_in_shard0) {
      ScenarioScript more;
      more.add(sim_ms(800), LossBurst{0.5, sim_ms(300)});
      more.add(sim_ms(1200), CrashNodes{2});
      sim.play(0, more);
    }
    sim.run_until(sim_ms(2000));
    return sim.summary();
  };

  const ShardedSummary first = run(false);
  std::cout << "4 topic shards x 16 slots, 2 cross publishers spanning 3 "
               "shards, horizon 2s:\n"
            << first.to_string() << "\n";

  std::cout << "\nReplaying the identical run...\n";
  const ShardedSummary replay = run(false);
  const bool reproducible = replay == first;
  std::cout << (reproducible
                    ? "  byte-identical aggregate and per-shard summaries.\n"
                    : "  MISMATCH — determinism broken!\n");

  std::cout << "\nRe-running with extra churn (loss burst + crashes) in "
               "shard 0 only...\n";
  const ShardedSummary perturbed = run(true);
  bool isolated = perturbed.shards[0] != first.shards[0];
  for (std::size_t s = 1; s < perturbed.shards.size(); ++s)
    isolated = isolated && perturbed.shards[s] == first.shards[s];
  std::cout << (isolated
                    ? "  shard 0 diverged; shards 1-3 byte-identical — the "
                      "extra churn never leaked.\n"
                    : "  MISMATCH — shard isolation broken!\n");

  return reproducible && isolated ? 0 : 1;
}
